// wsflow: server model.
//
// A server is a host in the provider's farm onto which web-service
// operations are deployed. Its computational power P(s) is expressed in Hz
// (cycles per second), so an operation of C(op) cycles takes C(op)/P(s)
// seconds of processing time on it (paper Table 1).

#ifndef WSFLOW_NETWORK_SERVER_H_
#define WSFLOW_NETWORK_SERVER_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace wsflow {

/// Strongly-typed index of a server within its network.
struct ServerId {
  uint32_t value = kInvalid;

  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;

  constexpr ServerId() = default;
  constexpr explicit ServerId(uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }

  friend constexpr bool operator==(ServerId a, ServerId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(ServerId a, ServerId b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(ServerId a, ServerId b) {
    return a.value < b.value;
  }
};

inline std::ostream& operator<<(std::ostream& os, ServerId id) {
  if (!id.valid()) return os << "S<invalid>";
  return os << "S" << id.value;
}

/// A deployment host.
class Server {
 public:
  Server() = default;
  Server(ServerId id, std::string name, double power_hz)
      : id_(id), name_(std::move(name)), power_hz_(power_hz) {}

  ServerId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Computational power P(s) in cycles per second.
  double power_hz() const { return power_hz_; }
  void set_power_hz(double hz) { power_hz_ = hz; }

  /// Locality zone label, e.g. "r0.c1" for region 0 / cluster 1 in a
  /// hierarchical network. Empty (the default) means "no locality
  /// information"; the flat paper topologies leave it empty. The
  /// geo-aware deployment heuristics group servers by this label.
  const std::string& zone() const { return zone_; }
  void set_zone(std::string zone) { zone_ = std::move(zone); }

 private:
  ServerId id_;
  std::string name_;
  std::string zone_;
  double power_hz_ = 0;
};

}  // namespace wsflow

template <>
struct std::hash<wsflow::ServerId> {
  size_t operator()(wsflow::ServerId id) const noexcept {
    return std::hash<uint32_t>()(id.value);
  }
};

#endif  // WSFLOW_NETWORK_SERVER_H_
