#include "src/network/topology.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/random.h"

namespace wsflow {

std::string_view NetworkKindToString(NetworkKind kind) {
  switch (kind) {
    case NetworkKind::kGeneral: return "general";
    case NetworkKind::kLine: return "line";
    case NetworkKind::kBus: return "bus";
    case NetworkKind::kStar: return "star";
    case NetworkKind::kRing: return "ring";
    case NetworkKind::kFatTree: return "fat-tree";
    case NetworkKind::kHierarchical: return "hier";
  }
  return "unknown";
}

ServerId Network::AddServer(std::string name, double power_hz,
                            std::string zone) {
  WSFLOW_CHECK_GT(power_hz, 0.0);
  ServerId id(static_cast<uint32_t>(servers_.size()));
  servers_.emplace_back(id, std::move(name), power_hz);
  servers_.back().set_zone(std::move(zone));
  incident_.emplace_back();
  return id;
}

std::vector<std::string> Network::Zones() const {
  std::vector<std::string> zones;
  for (const Server& s : servers_) {
    if (s.zone().empty()) continue;
    if (std::find(zones.begin(), zones.end(), s.zone()) == zones.end()) {
      zones.push_back(s.zone());
    }
  }
  return zones;
}

Result<LinkId> Network::AddLink(ServerId a, ServerId b, double speed_bps,
                                double propagation_s) {
  if (!Contains(a) || !Contains(b)) {
    return Status::NotFound("link endpoint not in network");
  }
  if (a == b) {
    return Status::InvalidArgument("self-link on server " +
                                   server(a).name());
  }
  if (speed_bps <= 0) {
    return Status::InvalidArgument("link speed must be positive");
  }
  if (propagation_s < 0) {
    return Status::InvalidArgument("negative propagation time");
  }
  if (has_bus()) {
    return Status::FailedPrecondition(
        "cannot mix point-to-point links with a shared bus");
  }
  if (FindLink(a, b).ok()) {
    std::ostringstream os;
    os << "duplicate link " << a << " - " << b;
    return Status::AlreadyExists(os.str());
  }
  LinkId id(static_cast<uint32_t>(links_.size()));
  links_.push_back(Link{id, a, b, speed_bps, propagation_s});
  incident_[a.value].push_back(id);
  incident_[b.value].push_back(id);
  return id;
}

Result<LinkId> Network::SetBus(double speed_bps, double propagation_s) {
  if (speed_bps <= 0) {
    return Status::InvalidArgument("bus speed must be positive");
  }
  if (propagation_s < 0) {
    return Status::InvalidArgument("negative propagation time");
  }
  if (has_bus()) {
    return Status::AlreadyExists("bus already installed");
  }
  if (!links_.empty()) {
    return Status::FailedPrecondition(
        "cannot mix a shared bus with point-to-point links");
  }
  LinkId id(static_cast<uint32_t>(links_.size()));
  links_.push_back(Link{id, ServerId(), ServerId(), speed_bps, propagation_s});
  bus_ = id;
  return id;
}

const Server& Network::server(ServerId id) const {
  WSFLOW_CHECK(Contains(id));
  return servers_[id.value];
}

Server& Network::mutable_server(ServerId id) {
  WSFLOW_CHECK(Contains(id));
  return servers_[id.value];
}

const Link& Network::link(LinkId id) const {
  WSFLOW_CHECK_LT(id.value, links_.size());
  return links_[id.value];
}

Result<LinkId> Network::FindLink(ServerId a, ServerId b) const {
  if (!Contains(a) || !Contains(b)) {
    return Status::NotFound("link endpoint not in network");
  }
  for (LinkId l : incident_[a.value]) {
    const Link& link = links_[l.value];
    if (link.a == b || link.b == b) return l;
  }
  std::ostringstream os;
  os << "no link " << a << " - " << b;
  return Status::NotFound(os.str());
}

const std::vector<LinkId>& Network::incident_links(ServerId id) const {
  WSFLOW_CHECK(Contains(id));
  return incident_[id.value];
}

double Network::TotalPowerHz() const {
  double total = 0;
  for (const Server& s : servers_) total += s.power_hz();
  return total;
}

namespace {

Result<Network> MakeServers(const std::vector<double>& powers_hz,
                            const std::string& name) {
  if (powers_hz.empty()) {
    return Status::InvalidArgument("network needs >= 1 server");
  }
  Network n(name);
  for (size_t i = 0; i < powers_hz.size(); ++i) {
    if (powers_hz[i] <= 0) {
      return Status::InvalidArgument("server power must be positive");
    }
    n.AddServer("s" + std::to_string(i + 1), powers_hz[i]);
  }
  return n;
}

}  // namespace

Result<Network> MakeLineNetwork(const std::vector<double>& powers_hz,
                                const std::vector<double>& link_speeds_bps,
                                double propagation_s) {
  if (link_speeds_bps.size() + 1 != powers_hz.size()) {
    return Status::InvalidArgument(
        "line network needs exactly one link per consecutive server pair");
  }
  WSFLOW_ASSIGN_OR_RETURN(Network n, MakeServers(powers_hz, "line"));
  for (size_t i = 0; i + 1 < powers_hz.size(); ++i) {
    WSFLOW_ASSIGN_OR_RETURN(
        LinkId l,
        n.AddLink(ServerId(static_cast<uint32_t>(i)),
                  ServerId(static_cast<uint32_t>(i + 1)), link_speeds_bps[i],
                  propagation_s));
    (void)l;
  }
  n.set_kind(NetworkKind::kLine);
  return n;
}

Result<Network> MakeBusNetwork(const std::vector<double>& powers_hz,
                               double bus_speed_bps, double propagation_s) {
  WSFLOW_ASSIGN_OR_RETURN(Network n, MakeServers(powers_hz, "bus"));
  WSFLOW_ASSIGN_OR_RETURN(LinkId l, n.SetBus(bus_speed_bps, propagation_s));
  (void)l;
  n.set_kind(NetworkKind::kBus);
  return n;
}

Result<Network> MakeStarNetwork(const std::vector<double>& powers_hz,
                                const std::vector<double>& spoke_speeds_bps,
                                double propagation_s) {
  if (powers_hz.size() < 2) {
    return Status::InvalidArgument("star network needs >= 2 servers");
  }
  if (spoke_speeds_bps.size() + 1 != powers_hz.size()) {
    return Status::InvalidArgument(
        "star network needs one spoke per non-hub server");
  }
  WSFLOW_ASSIGN_OR_RETURN(Network n, MakeServers(powers_hz, "star"));
  for (size_t i = 1; i < powers_hz.size(); ++i) {
    WSFLOW_ASSIGN_OR_RETURN(
        LinkId l, n.AddLink(ServerId(0), ServerId(static_cast<uint32_t>(i)),
                            spoke_speeds_bps[i - 1], propagation_s));
    (void)l;
  }
  n.set_kind(NetworkKind::kStar);
  return n;
}

Result<Network> MakeRingNetwork(const std::vector<double>& powers_hz,
                                const std::vector<double>& link_speeds_bps,
                                double propagation_s) {
  if (powers_hz.size() < 3) {
    return Status::InvalidArgument("ring network needs >= 3 servers");
  }
  if (link_speeds_bps.size() != powers_hz.size()) {
    return Status::InvalidArgument(
        "ring network needs exactly one link per server");
  }
  WSFLOW_ASSIGN_OR_RETURN(Network n, MakeServers(powers_hz, "ring"));
  for (size_t i = 0; i + 1 < powers_hz.size(); ++i) {
    WSFLOW_ASSIGN_OR_RETURN(
        LinkId l,
        n.AddLink(ServerId(static_cast<uint32_t>(i)),
                  ServerId(static_cast<uint32_t>(i + 1)), link_speeds_bps[i],
                  propagation_s));
    (void)l;
  }
  WSFLOW_ASSIGN_OR_RETURN(
      LinkId closing,
      n.AddLink(ServerId(static_cast<uint32_t>(powers_hz.size() - 1)),
                ServerId(0), link_speeds_bps.back(), propagation_s));
  (void)closing;
  n.set_kind(NetworkKind::kRing);
  return n;
}

namespace {

/// Resolves the canonical power vector: either one broadcast entry or
/// exactly `total` positive entries.
Result<std::vector<double>> ResolvePowers(const std::vector<double>& powers,
                                          size_t total) {
  if (powers.empty()) {
    return Status::InvalidArgument("powers_hz must not be empty");
  }
  std::vector<double> out;
  if (powers.size() == 1) {
    out.assign(total, powers[0]);
  } else if (powers.size() == total) {
    out = powers;
  } else {
    return Status::InvalidArgument(
        "powers_hz needs 1 (broadcast) or " + std::to_string(total) +
        " entries, got " + std::to_string(powers.size()));
  }
  for (double p : out) {
    if (p <= 0) {
      return Status::InvalidArgument("server power must be positive");
    }
  }
  return out;
}

Status CheckLink(double speed_bps, double propagation_s, const char* what) {
  if (speed_bps <= 0) {
    return Status::InvalidArgument(std::string(what) +
                                   " speed must be positive");
  }
  if (propagation_s < 0) {
    return Status::InvalidArgument(std::string(what) +
                                   " propagation must be non-negative");
  }
  return Status::OK();
}

}  // namespace

Result<Network> MakeFatTreeNetwork(const FatTreeOptions& options) {
  if (options.spines == 0 || options.racks == 0 || options.rack_size == 0) {
    return Status::InvalidArgument(
        "fat tree needs spines, racks and rack_size >= 1");
  }
  WSFLOW_RETURN_IF_ERROR(
      CheckLink(options.edge_speed_bps, options.edge_propagation_s, "edge"));
  WSFLOW_RETURN_IF_ERROR(CheckLink(options.spine_speed_bps,
                                   options.spine_propagation_s, "spine"));
  const size_t total =
      options.spines + options.racks * options.rack_size;
  WSFLOW_ASSIGN_OR_RETURN(std::vector<double> powers,
                          ResolvePowers(options.powers_hz, total));

  Network n("fat-tree");
  // Canonical order: spines first, then rack-major members.
  std::vector<ServerId> spines;
  for (size_t s = 0; s < options.spines; ++s) {
    spines.push_back(n.AddServer("spine" + std::to_string(s),
                                 powers[spines.size()], "spine"));
  }
  size_t next_power = options.spines;
  for (size_t r = 0; r < options.racks; ++r) {
    std::string zone = "rack" + std::to_string(r);
    ServerId head;
    for (size_t m = 0; m < options.rack_size; ++m) {
      ServerId id = n.AddServer(
          "r" + std::to_string(r) + "s" + std::to_string(m),
          powers[next_power++], zone);
      if (m == 0) {
        head = id;
        for (ServerId spine : spines) {
          WSFLOW_RETURN_IF_ERROR(
              n.AddLink(head, spine, options.spine_speed_bps,
                        options.spine_propagation_s)
                  .status());
        }
      } else {
        WSFLOW_RETURN_IF_ERROR(n.AddLink(head, id, options.edge_speed_bps,
                                         options.edge_propagation_s)
                                   .status());
      }
    }
  }
  n.set_kind(NetworkKind::kFatTree);
  return n;
}

Result<Network> MakeHierarchicalNetwork(const HierarchicalOptions& options) {
  if (options.regions == 0 || options.clusters_per_region == 0 ||
      options.cluster_size == 0) {
    return Status::InvalidArgument(
        "hierarchical network needs regions, clusters and cluster_size >= 1");
  }
  WSFLOW_RETURN_IF_ERROR(CheckLink(options.cluster_speed_bps,
                                   options.cluster_propagation_s, "cluster"));
  WSFLOW_RETURN_IF_ERROR(CheckLink(options.region_speed_bps,
                                   options.region_propagation_s, "region"));
  WSFLOW_RETURN_IF_ERROR(
      CheckLink(options.wan_speed_bps, options.wan_propagation_s, "wan"));
  const size_t total = options.regions * options.clusters_per_region *
                       options.cluster_size;
  WSFLOW_ASSIGN_OR_RETURN(std::vector<double> powers,
                          ResolvePowers(options.powers_hz, total));

  Network n("hier");
  std::vector<ServerId> gateways;  // cluster 0's head per region
  size_t next_power = 0;
  for (size_t i = 0; i < options.regions; ++i) {
    ServerId gateway;
    for (size_t j = 0; j < options.clusters_per_region; ++j) {
      std::string zone = "r" + std::to_string(i) + ".c" + std::to_string(j);
      ServerId head;
      for (size_t k = 0; k < options.cluster_size; ++k) {
        ServerId id = n.AddServer(
            "r" + std::to_string(i) + "c" + std::to_string(j) + "s" +
                std::to_string(k),
            powers[next_power++], zone);
        if (k == 0) {
          head = id;
          if (j == 0) {
            gateway = head;
          } else {
            WSFLOW_RETURN_IF_ERROR(
                n.AddLink(gateway, head, options.region_speed_bps,
                          options.region_propagation_s)
                    .status());
          }
        } else {
          WSFLOW_RETURN_IF_ERROR(
              n.AddLink(head, id, options.cluster_speed_bps,
                        options.cluster_propagation_s)
                  .status());
        }
      }
    }
    for (ServerId other : gateways) {
      WSFLOW_RETURN_IF_ERROR(n.AddLink(other, gateway, options.wan_speed_bps,
                                       options.wan_propagation_s)
                                 .status());
    }
    gateways.push_back(gateway);
  }
  n.set_kind(NetworkKind::kHierarchical);
  return n;
}

Result<Network> MakeRandomConnectedNetwork(const RandomNetworkParams& params) {
  if (params.num_servers == 0) {
    return Status::InvalidArgument("network needs >= 1 server");
  }
  if (params.min_power_hz <= 0 || params.max_power_hz < params.min_power_hz ||
      params.min_speed_bps <= 0 ||
      params.max_speed_bps < params.min_speed_bps ||
      params.min_propagation_s < 0 ||
      params.max_propagation_s < params.min_propagation_s) {
    return Status::InvalidArgument("invalid random network ranges");
  }
  Rng rng(params.seed * 0x9E3779B97F4A7C15ULL + 0x7F4A7C15u);
  auto log_uniform = [&rng](double lo, double hi) {
    if (lo == hi) return lo;
    return lo * std::exp(rng.NextDouble() * std::log(hi / lo));
  };
  Network n("random");
  for (size_t i = 0; i < params.num_servers; ++i) {
    n.AddServer("s" + std::to_string(i + 1),
                rng.NextDouble(params.min_power_hz, params.max_power_hz));
  }
  auto draw_propagation = [&]() {
    if (params.min_propagation_s == 0 && params.max_propagation_s == 0) {
      return 0.0;
    }
    double lo = std::max(params.min_propagation_s, 1e-9);
    return log_uniform(lo, std::max(params.max_propagation_s, lo));
  };
  // Random spanning tree: attach each server to a uniformly chosen
  // earlier one, so the graph is connected by construction.
  for (uint32_t i = 1; i < params.num_servers; ++i) {
    ServerId parent(static_cast<uint32_t>(rng.NextBounded(i)));
    WSFLOW_RETURN_IF_ERROR(
        n.AddLink(parent, ServerId(i),
                  log_uniform(params.min_speed_bps, params.max_speed_bps),
                  draw_propagation())
            .status());
  }
  size_t added = 0, attempts = 0;
  while (added < params.extra_links &&
         attempts < 16 * (params.extra_links + 1)) {
    ++attempts;
    ServerId a(static_cast<uint32_t>(rng.NextBounded(params.num_servers)));
    ServerId b(static_cast<uint32_t>(rng.NextBounded(params.num_servers)));
    if (a == b || n.FindLink(a, b).ok()) continue;
    WSFLOW_RETURN_IF_ERROR(
        n.AddLink(a, b,
                  log_uniform(params.min_speed_bps, params.max_speed_bps),
                  draw_propagation())
            .status());
    ++added;
  }
  return n;
}

}  // namespace wsflow
