#include "src/network/topology.h"

#include <sstream>

#include "src/common/logging.h"

namespace wsflow {

std::string_view NetworkKindToString(NetworkKind kind) {
  switch (kind) {
    case NetworkKind::kGeneral: return "general";
    case NetworkKind::kLine: return "line";
    case NetworkKind::kBus: return "bus";
    case NetworkKind::kStar: return "star";
    case NetworkKind::kRing: return "ring";
  }
  return "unknown";
}

ServerId Network::AddServer(std::string name, double power_hz) {
  WSFLOW_CHECK_GT(power_hz, 0.0);
  ServerId id(static_cast<uint32_t>(servers_.size()));
  servers_.emplace_back(id, std::move(name), power_hz);
  incident_.emplace_back();
  return id;
}

Result<LinkId> Network::AddLink(ServerId a, ServerId b, double speed_bps,
                                double propagation_s) {
  if (!Contains(a) || !Contains(b)) {
    return Status::NotFound("link endpoint not in network");
  }
  if (a == b) {
    return Status::InvalidArgument("self-link on server " +
                                   server(a).name());
  }
  if (speed_bps <= 0) {
    return Status::InvalidArgument("link speed must be positive");
  }
  if (propagation_s < 0) {
    return Status::InvalidArgument("negative propagation time");
  }
  if (has_bus()) {
    return Status::FailedPrecondition(
        "cannot mix point-to-point links with a shared bus");
  }
  if (FindLink(a, b).ok()) {
    std::ostringstream os;
    os << "duplicate link " << a << " - " << b;
    return Status::AlreadyExists(os.str());
  }
  LinkId id(static_cast<uint32_t>(links_.size()));
  links_.push_back(Link{id, a, b, speed_bps, propagation_s});
  incident_[a.value].push_back(id);
  incident_[b.value].push_back(id);
  return id;
}

Result<LinkId> Network::SetBus(double speed_bps, double propagation_s) {
  if (speed_bps <= 0) {
    return Status::InvalidArgument("bus speed must be positive");
  }
  if (propagation_s < 0) {
    return Status::InvalidArgument("negative propagation time");
  }
  if (has_bus()) {
    return Status::AlreadyExists("bus already installed");
  }
  if (!links_.empty()) {
    return Status::FailedPrecondition(
        "cannot mix a shared bus with point-to-point links");
  }
  LinkId id(static_cast<uint32_t>(links_.size()));
  links_.push_back(Link{id, ServerId(), ServerId(), speed_bps, propagation_s});
  bus_ = id;
  return id;
}

const Server& Network::server(ServerId id) const {
  WSFLOW_CHECK(Contains(id));
  return servers_[id.value];
}

Server& Network::mutable_server(ServerId id) {
  WSFLOW_CHECK(Contains(id));
  return servers_[id.value];
}

const Link& Network::link(LinkId id) const {
  WSFLOW_CHECK_LT(id.value, links_.size());
  return links_[id.value];
}

Result<LinkId> Network::FindLink(ServerId a, ServerId b) const {
  if (!Contains(a) || !Contains(b)) {
    return Status::NotFound("link endpoint not in network");
  }
  for (LinkId l : incident_[a.value]) {
    const Link& link = links_[l.value];
    if (link.a == b || link.b == b) return l;
  }
  std::ostringstream os;
  os << "no link " << a << " - " << b;
  return Status::NotFound(os.str());
}

const std::vector<LinkId>& Network::incident_links(ServerId id) const {
  WSFLOW_CHECK(Contains(id));
  return incident_[id.value];
}

double Network::TotalPowerHz() const {
  double total = 0;
  for (const Server& s : servers_) total += s.power_hz();
  return total;
}

namespace {

Result<Network> MakeServers(const std::vector<double>& powers_hz,
                            const std::string& name) {
  if (powers_hz.empty()) {
    return Status::InvalidArgument("network needs >= 1 server");
  }
  Network n(name);
  for (size_t i = 0; i < powers_hz.size(); ++i) {
    if (powers_hz[i] <= 0) {
      return Status::InvalidArgument("server power must be positive");
    }
    n.AddServer("s" + std::to_string(i + 1), powers_hz[i]);
  }
  return n;
}

}  // namespace

Result<Network> MakeLineNetwork(const std::vector<double>& powers_hz,
                                const std::vector<double>& link_speeds_bps,
                                double propagation_s) {
  if (link_speeds_bps.size() + 1 != powers_hz.size()) {
    return Status::InvalidArgument(
        "line network needs exactly one link per consecutive server pair");
  }
  WSFLOW_ASSIGN_OR_RETURN(Network n, MakeServers(powers_hz, "line"));
  for (size_t i = 0; i + 1 < powers_hz.size(); ++i) {
    WSFLOW_ASSIGN_OR_RETURN(
        LinkId l,
        n.AddLink(ServerId(static_cast<uint32_t>(i)),
                  ServerId(static_cast<uint32_t>(i + 1)), link_speeds_bps[i],
                  propagation_s));
    (void)l;
  }
  n.set_kind(NetworkKind::kLine);
  return n;
}

Result<Network> MakeBusNetwork(const std::vector<double>& powers_hz,
                               double bus_speed_bps, double propagation_s) {
  WSFLOW_ASSIGN_OR_RETURN(Network n, MakeServers(powers_hz, "bus"));
  WSFLOW_ASSIGN_OR_RETURN(LinkId l, n.SetBus(bus_speed_bps, propagation_s));
  (void)l;
  n.set_kind(NetworkKind::kBus);
  return n;
}

Result<Network> MakeStarNetwork(const std::vector<double>& powers_hz,
                                const std::vector<double>& spoke_speeds_bps,
                                double propagation_s) {
  if (powers_hz.size() < 2) {
    return Status::InvalidArgument("star network needs >= 2 servers");
  }
  if (spoke_speeds_bps.size() + 1 != powers_hz.size()) {
    return Status::InvalidArgument(
        "star network needs one spoke per non-hub server");
  }
  WSFLOW_ASSIGN_OR_RETURN(Network n, MakeServers(powers_hz, "star"));
  for (size_t i = 1; i < powers_hz.size(); ++i) {
    WSFLOW_ASSIGN_OR_RETURN(
        LinkId l, n.AddLink(ServerId(0), ServerId(static_cast<uint32_t>(i)),
                            spoke_speeds_bps[i - 1], propagation_s));
    (void)l;
  }
  n.set_kind(NetworkKind::kStar);
  return n;
}

Result<Network> MakeRingNetwork(const std::vector<double>& powers_hz,
                                const std::vector<double>& link_speeds_bps,
                                double propagation_s) {
  if (powers_hz.size() < 3) {
    return Status::InvalidArgument("ring network needs >= 3 servers");
  }
  if (link_speeds_bps.size() != powers_hz.size()) {
    return Status::InvalidArgument(
        "ring network needs exactly one link per server");
  }
  WSFLOW_ASSIGN_OR_RETURN(Network n, MakeServers(powers_hz, "ring"));
  for (size_t i = 0; i + 1 < powers_hz.size(); ++i) {
    WSFLOW_ASSIGN_OR_RETURN(
        LinkId l,
        n.AddLink(ServerId(static_cast<uint32_t>(i)),
                  ServerId(static_cast<uint32_t>(i + 1)), link_speeds_bps[i],
                  propagation_s));
    (void)l;
  }
  WSFLOW_ASSIGN_OR_RETURN(
      LinkId closing,
      n.AddLink(ServerId(static_cast<uint32_t>(powers_hz.size() - 1)),
                ServerId(0), link_speeds_bps.back(), propagation_s));
  (void)closing;
  n.set_kind(NetworkKind::kRing);
  return n;
}

}  // namespace wsflow
