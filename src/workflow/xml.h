// wsflow: minimal XML document model, parser and writer.
//
// Web-service workflows are described in XML dialects (WSDL, WSFL, BPEL);
// wsflow persists workflows in a small XML format (serialization.h). This
// module implements the XML subset needed for that: elements with
// attributes, nested children and text content, with entity escaping.
// Unsupported: namespaces, DTDs, processing instructions other than the
// leading declaration, and CDATA sections. Comments are parsed and skipped.

#ifndef WSFLOW_WORKFLOW_XML_H_
#define WSFLOW_WORKFLOW_XML_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"

namespace wsflow {

/// An XML element: tag, attributes (ordered), text and child elements.
class XmlNode {
 public:
  XmlNode() = default;
  explicit XmlNode(std::string tag) : tag_(std::move(tag)) {}

  const std::string& tag() const { return tag_; }
  void set_tag(std::string tag) { tag_ = std::move(tag); }

  /// Concatenated character data directly inside this element.
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view text) { text_ += text; }

  /// Attributes in document order.
  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }
  /// Sets (or overwrites) an attribute.
  void SetAttr(const std::string& key, std::string value);
  void SetAttr(const std::string& key, double value);
  void SetAttr(const std::string& key, int64_t value);

  /// Attribute lookup; NotFound when absent.
  Result<std::string> Attr(const std::string& key) const;
  Result<double> DoubleAttr(const std::string& key) const;
  Result<int64_t> IntAttr(const std::string& key) const;
  bool HasAttr(const std::string& key) const;

  const std::vector<XmlNode>& children() const { return children_; }
  std::vector<XmlNode>& children() { return children_; }

  /// Appends a child element and returns a reference to it.
  XmlNode& AddChild(std::string tag);

  /// First child with the given tag; NotFound when absent. The pointer
  /// stays valid until children are mutated.
  Result<const XmlNode*> Child(const std::string& tag) const;

  /// All children with the given tag, in order.
  std::vector<const XmlNode*> Children(const std::string& tag) const;

  /// Serializes this element (and subtree) as indented XML.
  std::string ToString(int indent = 0) const;

 private:
  std::string tag_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<XmlNode> children_;
};

/// Parses a document and returns its root element. Accepts an optional
/// leading `<?xml ...?>` declaration and skips comments and inter-element
/// whitespace.
Result<XmlNode> ParseXml(std::string_view input);

/// Serializes `root` with an XML declaration header.
std::string WriteXml(const XmlNode& root);

/// Escapes &, <, >, " and ' for use in text or attribute values.
std::string XmlEscape(std::string_view raw);

}  // namespace wsflow

#endif  // WSFLOW_WORKFLOW_XML_H_
