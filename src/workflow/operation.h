// wsflow: web-service operation model.
//
// An operation is a WSDL-style module that consumes one input XML message and
// produces one output XML message (paper §2.2). Operations are either
// *operational* (they do workflow work) or *decision* nodes that control the
// flow: AND / OR / XOR splits and their complements (/AND, /OR, /XOR), which
// we call joins. Decision nodes are deployable operations like any other —
// they run on a server and consume cycles.

#ifndef WSFLOW_WORKFLOW_OPERATION_H_
#define WSFLOW_WORKFLOW_OPERATION_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace wsflow {

/// Strongly-typed index of an operation within its workflow.
struct OperationId {
  uint32_t value = kInvalid;

  static constexpr uint32_t kInvalid = 0xFFFFFFFFu;

  constexpr OperationId() = default;
  constexpr explicit OperationId(uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }

  friend constexpr bool operator==(OperationId a, OperationId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(OperationId a, OperationId b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(OperationId a, OperationId b) {
    return a.value < b.value;
  }
};

inline std::ostream& operator<<(std::ostream& os, OperationId id) {
  if (!id.valid()) return os << "O<invalid>";
  return os << "O" << id.value;
}

/// Kind of a workflow node (paper §2.2).
enum class OperationType : uint8_t {
  kOperational = 0,  ///< Performs a task.
  kAndSplit,         ///< All outgoing paths execute; rendezvous at kAndJoin.
  kAndJoin,          ///< Complement of kAndSplit (the paper's /AND).
  kOrSplit,          ///< All paths start; one success suffices at kOrJoin.
  kOrJoin,           ///< Complement of kOrSplit (/OR).
  kXorSplit,         ///< Probabilistically weighted pick of one path.
  kXorJoin,          ///< Complement of kXorSplit (/XOR).
};

/// True for AND/OR/XOR splits and joins.
bool IsDecision(OperationType type);
/// True for the three split types.
bool IsSplit(OperationType type);
/// True for the three join types.
bool IsJoin(OperationType type);
/// The matching join type of a split (and vice versa); operational maps to
/// itself.
OperationType ComplementType(OperationType type);

/// Stable lower-case name: "operational", "and-split", ...
std::string_view OperationTypeToString(OperationType type);

std::ostream& operator<<(std::ostream& os, OperationType type);

/// A deployable web-service operation.
class Operation {
 public:
  Operation() = default;
  Operation(OperationId id, std::string name, OperationType type,
            double cycles)
      : id_(id), name_(std::move(name)), type_(type), cycles_(cycles) {}

  OperationId id() const { return id_; }
  const std::string& name() const { return name_; }
  OperationType type() const { return type_; }

  /// CPU cycles C(op) needed for one execution of the operation.
  double cycles() const { return cycles_; }
  void set_cycles(double cycles) { cycles_ = cycles; }

  bool is_decision() const { return IsDecision(type_); }
  bool is_split() const { return IsSplit(type_); }
  bool is_join() const { return IsJoin(type_); }

 private:
  OperationId id_;
  std::string name_;
  OperationType type_ = OperationType::kOperational;
  double cycles_ = 0;
};

}  // namespace wsflow

template <>
struct std::hash<wsflow::OperationId> {
  size_t operator()(wsflow::OperationId id) const noexcept {
    return std::hash<uint32_t>()(id.value);
  }
};

#endif  // WSFLOW_WORKFLOW_OPERATION_H_
