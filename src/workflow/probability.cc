#include "src/workflow/probability.h"

namespace wsflow {

namespace {

/// Fills op_prob and edge_prob by walking the block tree. Edge
/// probabilities are assigned structurally: edges within a control context
/// carry that context's probability; a branch's entry/exit edges (and the
/// direct split->join edge of an empty branch) carry the branch's
/// probability — which matters for XOR, where the branch executes less
/// often than its split.
class ProbabilityAssigner {
 public:
  ProbabilityAssigner(const Workflow& w, ExecutionProfile* profile)
      : w_(w), profile_(profile) {}

  void Assign(const Block& block, double p) {
    switch (block.kind) {
      case Block::Kind::kLeaf:
        profile_->op_prob[block.op.value] = p;
        break;
      case Block::Kind::kSequence:
        for (const Block& c : block.children) Assign(c, p);
        for (size_t i = 0; i + 1 < block.children.size(); ++i) {
          SetEdge(TailOperation(block.children[i]),
                  HeadOperation(block.children[i + 1]), p);
        }
        break;
      case Block::Kind::kBranch: {
        profile_->op_prob[block.split.value] = p;
        profile_->op_prob[block.join.value] = p;
        for (size_t i = 0; i < block.children.size(); ++i) {
          const Block& body = block.children[i];
          double branch_p = p * block.branch_probs[i];
          if (body.kind == Block::Kind::kSequence && body.children.empty()) {
            SetEdge(block.split, block.join, branch_p);
            continue;
          }
          SetEdge(block.split, HeadOperation(body), branch_p);
          Assign(body, branch_p);
          SetEdge(TailOperation(body), block.join, branch_p);
        }
        break;
      }
    }
  }

 private:
  void SetEdge(OperationId from, OperationId to, double p) {
    Result<TransitionId> t = w_.FindTransition(from, to);
    if (t.ok()) profile_->edge_prob[t->value] = p;
  }

  const Workflow& w_;
  ExecutionProfile* profile_;
};

}  // namespace

ExecutionProfile ComputeExecutionProfile(const Workflow& w,
                                         const Block& root) {
  ExecutionProfile profile;
  profile.op_prob.assign(w.num_operations(), 0.0);
  profile.edge_prob.assign(w.num_transitions(), 0.0);
  ProbabilityAssigner(w, &profile).Assign(root, 1.0);
  return profile;
}

Result<ExecutionProfile> ComputeExecutionProfile(const Workflow& w) {
  WSFLOW_ASSIGN_OR_RETURN(Block root, DecomposeBlocks(w));
  return ComputeExecutionProfile(w, root);
}

ExecutionProfile UnitProfile(const Workflow& w) {
  ExecutionProfile profile;
  profile.op_prob.assign(w.num_operations(), 1.0);
  profile.edge_prob.assign(w.num_transitions(), 1.0);
  return profile;
}

}  // namespace wsflow
