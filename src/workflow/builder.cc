#include "src/workflow/builder.h"

#include "src/workflow/validate.h"

namespace wsflow {

WorkflowBuilder::WorkflowBuilder(std::string name) : w_(std::move(name)) {}

void WorkflowBuilder::Fail(Status status) {
  if (status_.ok()) status_ = std::move(status);
}

void WorkflowBuilder::Link(OperationId to, double msg_bits) {
  if (!status_.ok()) return;
  if (tail_.valid()) {
    Result<TransitionId> r = w_.AddTransition(tail_, to, msg_bits);
    if (!r.ok()) Fail(r.status());
  } else if (!frames_.empty() && frames_.back().branch_open) {
    Frame& f = frames_.back();
    if (!f.branch_has_elements) {
      // First element of the branch: entry edge from the split carries the
      // branch weight.
      Result<TransitionId> r =
          w_.AddTransition(f.split, to, msg_bits, f.pending_weight);
      if (!r.ok()) Fail(r.status());
      f.branch_has_elements = true;
    }
  } else if (has_elements_) {
    Fail(Status::FailedPrecondition(
        "internal builder state: detached element"));
  }
  tail_ = to;
  has_elements_ = true;
}

WorkflowBuilder& WorkflowBuilder::Op(const std::string& name, double cycles,
                                     double in_msg_bits) {
  if (!status_.ok()) return *this;
  if (!frames_.empty() && !frames_.back().branch_open) {
    Fail(Status::FailedPrecondition(
        "element '" + name + "' added after Split() without Branch()"));
    return *this;
  }
  if (Id(name).ok()) {
    Fail(Status::AlreadyExists("duplicate operation name '" + name + "'"));
    return *this;
  }
  OperationId id = w_.AddOperation(name, OperationType::kOperational, cycles);
  Link(id, in_msg_bits);
  return *this;
}

WorkflowBuilder& WorkflowBuilder::Split(OperationType type,
                                        const std::string& name, double cycles,
                                        double in_msg_bits) {
  if (!status_.ok()) return *this;
  if (!IsSplit(type)) {
    Fail(Status::InvalidArgument("Split() requires a split type, got " +
                                 std::string(OperationTypeToString(type))));
    return *this;
  }
  if (!frames_.empty() && !frames_.back().branch_open) {
    Fail(Status::FailedPrecondition(
        "split '" + name + "' added after Split() without Branch()"));
    return *this;
  }
  if (Id(name).ok()) {
    Fail(Status::AlreadyExists("duplicate operation name '" + name + "'"));
    return *this;
  }
  OperationId id = w_.AddOperation(name, type, cycles);
  Link(id, in_msg_bits);
  Frame f;
  f.split = id;
  f.split_type = type;
  frames_.push_back(f);
  tail_ = OperationId();  // the next element belongs to a branch
  return *this;
}

WorkflowBuilder& WorkflowBuilder::Branch(double weight) {
  if (!status_.ok()) return *this;
  if (frames_.empty()) {
    Fail(Status::FailedPrecondition("Branch() without an open Split()"));
    return *this;
  }
  if (weight < 0) {
    Fail(Status::InvalidArgument("negative branch weight"));
    return *this;
  }
  Frame& f = frames_.back();
  if (f.branch_open) {
    // Close the previous branch section.
    f.tails.push_back(tail_);  // invalid tail == empty branch
    f.weights.push_back(f.pending_weight);
  }
  f.branch_open = true;
  f.branch_has_elements = false;
  f.pending_weight = weight;
  tail_ = OperationId();
  return *this;
}

WorkflowBuilder& WorkflowBuilder::Join(const std::string& name, double cycles,
                                       double in_msg_bits) {
  if (!status_.ok()) return *this;
  if (frames_.empty()) {
    Fail(Status::FailedPrecondition("Join() without an open Split()"));
    return *this;
  }
  Frame& f = frames_.back();
  if (!f.branch_open) {
    Fail(Status::FailedPrecondition(
        "Join() on a block with no Branch() sections"));
    return *this;
  }
  if (Id(name).ok()) {
    Fail(Status::AlreadyExists("duplicate operation name '" + name + "'"));
    return *this;
  }
  f.tails.push_back(tail_);
  f.weights.push_back(f.pending_weight);
  if (f.tails.size() < 2) {
    Fail(Status::FailedPrecondition(
        "block '" + w_.operation(f.split).name() +
        "' needs at least two branches"));
    return *this;
  }
  OperationId join =
      w_.AddOperation(name, ComplementType(f.split_type), cycles);
  for (size_t i = 0; i < f.tails.size(); ++i) {
    Result<TransitionId> r =
        f.tails[i].valid()
            ? w_.AddTransition(f.tails[i], join, in_msg_bits)
            // Empty branch: the split feeds the join directly; the entry
            // edge carries the branch weight.
            : w_.AddTransition(f.split, join, in_msg_bits, f.weights[i]);
    if (!r.ok()) {
      Fail(r.status().WithContext("closing block '" +
                                  w_.operation(f.split).name() + "'"));
      return *this;
    }
  }
  frames_.pop_back();
  tail_ = join;
  return *this;
}

Result<OperationId> WorkflowBuilder::Id(const std::string& name) const {
  for (const Operation& op : w_.operations()) {
    if (op.name() == name) return op.id();
  }
  return Status::NotFound("no operation named '" + name + "'");
}

Result<Workflow> WorkflowBuilder::Build() {
  if (!status_.ok()) return status_;
  if (!frames_.empty()) {
    return Status::FailedPrecondition(
        std::to_string(frames_.size()) + " unclosed Split() block(s)");
  }
  WSFLOW_RETURN_IF_ERROR(ValidateAll(w_));
  return w_;  // copy: the builder stays usable (e.g. for Id() lookups)
}

}  // namespace wsflow
