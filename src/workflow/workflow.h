// wsflow: the workflow digraph W(O, E).
//
// A workflow is a directed graph whose nodes are web-service operations and
// whose edges are XML messages: an edge (o_p, o_n) means the output message
// of o_p is the input of o_n (paper §2.2). Each ordered pair of operations
// is connected by at most one message. Message sizes are stored in bits.

#ifndef WSFLOW_WORKFLOW_WORKFLOW_H_
#define WSFLOW_WORKFLOW_WORKFLOW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/workflow/operation.h"

namespace wsflow {

/// Index of a transition (message edge) within its workflow.
struct TransitionId {
  uint32_t value = 0xFFFFFFFFu;

  constexpr TransitionId() = default;
  constexpr explicit TransitionId(uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != 0xFFFFFFFFu; }

  friend constexpr bool operator==(TransitionId a, TransitionId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(TransitionId a, TransitionId b) {
    return a.value != b.value;
  }
};

/// A message edge: the output of `from` feeds the input of `to`.
struct Transition {
  TransitionId id;
  OperationId from;
  OperationId to;
  /// MsgSize(from, to) in bits.
  double message_bits = 0;
  /// Relative weight of this branch when `from` is an XOR split; the
  /// probability of the branch is weight / (sum of sibling weights).
  /// Ignored (and conventionally 1) for all other edge kinds.
  double branch_weight = 1.0;
};

/// The workflow digraph. Construction is append-only: operations and
/// transitions are added and never removed, so OperationId / TransitionId
/// values are dense indices and remain stable.
class Workflow {
 public:
  Workflow() = default;
  explicit Workflow(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds an operation; returns its id. Cycles must be non-negative.
  OperationId AddOperation(std::string name, OperationType type,
                           double cycles);

  /// Adds a message edge. Fails if either endpoint is unknown, if the edge
  /// would duplicate an existing (from, to) pair, or if from == to.
  Result<TransitionId> AddTransition(OperationId from, OperationId to,
                                     double message_bits,
                                     double branch_weight = 1.0);

  size_t num_operations() const { return operations_.size(); }
  size_t num_transitions() const { return transitions_.size(); }

  bool Contains(OperationId id) const { return id.value < operations_.size(); }

  const Operation& operation(OperationId id) const;
  Operation& mutable_operation(OperationId id);
  const std::vector<Operation>& operations() const { return operations_; }

  const Transition& transition(TransitionId id) const;
  Transition& mutable_transition(TransitionId id);
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Ids of edges leaving / entering `id`, in insertion order.
  const std::vector<TransitionId>& out_edges(OperationId id) const;
  const std::vector<TransitionId>& in_edges(OperationId id) const;

  size_t out_degree(OperationId id) const { return out_edges(id).size(); }
  size_t in_degree(OperationId id) const { return in_edges(id).size(); }

  /// The transition (from, to) if present.
  Result<TransitionId> FindTransition(OperationId from, OperationId to) const;

  /// Operations with no incoming / no outgoing edges.
  std::vector<OperationId> Sources() const;
  std::vector<OperationId> Sinks() const;

  /// True when the workflow is a simple path O_1 -> O_2 -> ... -> O_M
  /// covering all operations (the paper's "line" topology).
  bool IsLine() const;

  /// For a line workflow, the operations in path order. Fails when the
  /// workflow is not a line.
  Result<std::vector<OperationId>> LineOrder() const;

  /// Topological order of all operations; fails when the graph has a cycle.
  Result<std::vector<OperationId>> TopologicalOrder() const;

  /// Sum of C(op) over all operations.
  double TotalCycles() const;

  /// Sum of message sizes over all transitions, in bits.
  double TotalMessageBits() const;

  /// Counts of decision vs operational nodes (splits + joins are decisions).
  size_t NumDecisionNodes() const;
  size_t NumOperationalNodes() const {
    return num_operations() - NumDecisionNodes();
  }

 private:
  std::string name_;
  std::vector<Operation> operations_;
  std::vector<Transition> transitions_;
  std::vector<std::vector<TransitionId>> out_;
  std::vector<std::vector<TransitionId>> in_;
};

/// Builds the line workflow O_1 -> ... -> O_M with the given per-operation
/// cycles and per-edge message sizes (bits). `message_bits` must have
/// exactly cycles.size() - 1 entries.
Result<Workflow> MakeLineWorkflow(const std::string& name,
                                  const std::vector<double>& cycles,
                                  const std::vector<double>& message_bits);

}  // namespace wsflow

#endif  // WSFLOW_WORKFLOW_WORKFLOW_H_
