// wsflow: structured workflow import (BPEL-flavoured dialect).
//
// The paper's workflows come from composition languages like BPEL or WSFL
// (§1). Besides wsflow's flat XML (serialization.h: explicit operations +
// transitions), this module accepts a *structured* description that mirrors
// how such languages nest control flow — well-formedness holds by
// construction and authors never write explicit split/join nodes:
//
//   <process name="rendezvous" default_bits="6984">
//     <invoke name="receive" cycles="5e6"/>
//     <invoke name="lookup" cycles="50e6" in_bits="60648"/>
//     <switch name="available" cycles="1e6">        <!-- XOR -->
//       <case probability="0.7">
//         <invoke name="book" cycles="50e6"/>
//       </case>
//       <case probability="0.3">
//         <invoke name="waitlist" cycles="5e6"/>
//       </case>
//     </switch>
//     <flow name="close" cycles="1e6">              <!-- AND -->
//       <invoke name="bill" cycles="50e6"/>
//       <sequence>
//         <invoke name="archive" cycles="500e6"/>
//         <invoke name="notify" cycles="5e6"/>
//       </sequence>
//     </flow>
//     <pick name="confirm" cycles="1e6">            <!-- OR -->
//       <branch><invoke name="sms" cycles="5e6"/></branch>
//       <branch><invoke name="email" cycles="5e6"/></branch>
//     </pick>
//   </process>
//
// Elements:
//   <invoke name cycles [in_bits]>            an operation
//   <sequence>...</sequence>                  inline grouping
//   <flow name cycles [in_bits] [join_cycles] [join_bits]>   AND block;
//         every direct child is one branch
//   <switch ...> with <case [probability]> children          XOR block
//   <pick ...> with <branch> children                        OR block
//
// `in_bits` is the size of the element's incoming message (bits) and
// defaults to the process's `default_bits` (default 0). Split elements
// close with an auto-generated join named `<name>__join`, weighing
// `join_cycles` (default: the split's cycles) and receiving `join_bits`
// (default `default_bits`) from every branch. An empty <case>/<branch> is
// an empty branch (direct split->join message).

#ifndef WSFLOW_WORKFLOW_BPEL_IMPORT_H_
#define WSFLOW_WORKFLOW_BPEL_IMPORT_H_

#include <string>

#include "src/common/result.h"
#include "src/workflow/workflow.h"
#include "src/workflow/xml.h"

namespace wsflow {

/// Converts a parsed <process> element into a validated workflow.
Result<Workflow> WorkflowFromProcessXml(const XmlNode& root);

/// Parses and converts a structured process description.
Result<Workflow> WorkflowFromProcessString(const std::string& text);

/// Loads a structured process file.
Result<Workflow> LoadProcessWorkflow(const std::string& path);

}  // namespace wsflow

#endif  // WSFLOW_WORKFLOW_BPEL_IMPORT_H_
