// wsflow: fluent builder for well-formed workflows.
//
// The builder assembles a workflow as a sequence of operations and nested
// branch blocks, guaranteeing well-formedness by construction:
//
//   WorkflowBuilder b("rendezvous");
//   b.Op("request", 5e6)
//    .Split(OperationType::kXorSplit, "avail?", 1e6, 7000)
//      .Branch(0.7).Op("book", 50e6, 7000)
//      .Branch(0.3).Op("waitlist", 5e6, 7000)
//    .Join("booked", 1e6, 7000)
//    .Op("notify", 5e6, 7000);
//   Result<Workflow> w = b.Build();
//
// Each appended element names the size (bits) of its *incoming* message; the
// first element of the workflow has none. Errors are sticky: the first
// failure is reported by Build() and later calls are no-ops.

#ifndef WSFLOW_WORKFLOW_BUILDER_H_
#define WSFLOW_WORKFLOW_BUILDER_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/workflow/workflow.h"

namespace wsflow {

class WorkflowBuilder {
 public:
  explicit WorkflowBuilder(std::string name);

  /// Appends an operational node, linked from the current tail by a message
  /// of `in_msg_bits` bits (ignored for the first element).
  WorkflowBuilder& Op(const std::string& name, double cycles,
                      double in_msg_bits = 0);

  /// Opens a branch block with the given split decision node. `type` must
  /// be a split type. Follow with one or more Branch() sections and close
  /// with Join().
  WorkflowBuilder& Split(OperationType type, const std::string& name,
                         double cycles, double in_msg_bits = 0);

  /// Starts the next branch of the innermost open block. `weight` is the
  /// XOR branch weight (ignored for AND/OR splits).
  WorkflowBuilder& Branch(double weight = 1.0);

  /// Closes the innermost open block with its complement decision node.
  /// `in_msg_bits` is used for every branch-tail -> join message.
  WorkflowBuilder& Join(const std::string& name, double cycles,
                        double in_msg_bits = 0);

  /// Id of a previously added operation by name.
  Result<OperationId> Id(const std::string& name) const;

  /// Finalizes, validates and returns a copy of the workflow. The builder
  /// remains usable afterwards — in particular Id() lookups still work.
  Result<Workflow> Build();

 private:
  struct Frame {
    OperationId split;
    OperationType split_type;
    bool branch_open = false;      // Branch() called for the current section
    bool branch_has_elements = false;
    double pending_weight = 1.0;   // weight of the current branch entry edge
    // Tails of completed branches; an invalid id marks an empty branch
    // (split wired directly to the join).
    std::vector<OperationId> tails;
    // Entry-edge weight of each completed branch, parallel to `tails`
    // (consumed at Join() time only for empty branches).
    std::vector<double> weights;
  };

  /// Links the current attach point to `to` and makes `to` the new tail.
  void Link(OperationId to, double msg_bits);
  void Fail(Status status);

  Workflow w_;
  Status status_;
  std::vector<Frame> frames_;
  OperationId tail_;        // current sequence tail; invalid at start/branch
  bool has_elements_ = false;
};

}  // namespace wsflow

#endif  // WSFLOW_WORKFLOW_BUILDER_H_
