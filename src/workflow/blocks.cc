#include "src/workflow/blocks.h"

#include <sstream>
#include <unordered_set>

#include "src/common/logging.h"

namespace wsflow {

size_t Block::CountOperations() const {
  switch (kind) {
    case Kind::kLeaf:
      return 1;
    case Kind::kSequence: {
      size_t n = 0;
      for (const Block& c : children) n += c.CountOperations();
      return n;
    }
    case Kind::kBranch: {
      size_t n = 2;  // split + join
      for (const Block& c : children) n += c.CountOperations();
      return n;
    }
  }
  return 0;
}

std::string Block::ToString(const Workflow& w, int indent) const {
  std::ostringstream os;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (kind) {
    case Kind::kLeaf:
      os << pad << "leaf " << w.operation(op).name() << "\n";
      break;
    case Kind::kSequence:
      os << pad << "sequence\n";
      for (const Block& c : children) os << c.ToString(w, indent + 1);
      break;
    case Kind::kBranch:
      os << pad << "branch " << OperationTypeToString(branch_type) << " ("
         << w.operation(split).name() << " .. " << w.operation(join).name()
         << ")\n";
      for (size_t i = 0; i < children.size(); ++i) {
        os << pad << "  [p=" << branch_probs[i] << "]\n";
        os << children[i].ToString(w, indent + 2);
      }
      break;
  }
  return os.str();
}

namespace {

/// Recursive-descent parser over the workflow digraph.
class BlockParser {
 public:
  explicit BlockParser(const Workflow& w) : w_(w) {}

  Result<Block> Parse() {
    if (w_.num_operations() == 0) {
      return Status::FailedPrecondition("empty workflow");
    }
    std::vector<OperationId> sources = w_.Sources();
    if (sources.size() != 1) {
      return Status::FailedPrecondition(
          "well-formed workflow must have exactly one source, found " +
          std::to_string(sources.size()));
    }
    WSFLOW_ASSIGN_OR_RETURN(Block root,
                            ParseSequence(sources[0], OperationId()));
    if (visited_.size() != w_.num_operations()) {
      return Status::FailedPrecondition(
          "workflow is disconnected: reached " +
          std::to_string(visited_.size()) + " of " +
          std::to_string(w_.num_operations()) + " operations");
    }
    return root;
  }

 private:
  /// Parses the sequence starting at `cur` and stopping when `stop` is
  /// reached (exclusive); an invalid `stop` means "parse to a sink".
  Result<Block> ParseSequence(OperationId cur, OperationId stop) {
    Block seq;
    seq.kind = Block::Kind::kSequence;
    while (cur.valid() && cur != stop) {
      const Operation& op = w_.operation(cur);
      if (op.is_join()) {
        return Status::FailedPrecondition(
            "join node " + op.name() +
            " reached outside its branch block (unbalanced complement)");
      }
      WSFLOW_RETURN_IF_ERROR(MarkVisited(cur));
      if (op.is_split()) {
        WSFLOW_ASSIGN_OR_RETURN(Block branch, ParseBranch(cur));
        OperationId join = branch.join;
        seq.children.push_back(std::move(branch));
        WSFLOW_ASSIGN_OR_RETURN(cur, SingleSuccessor(join));
      } else {
        if (w_.out_degree(cur) > 1) {
          return Status::FailedPrecondition(
              "operational node " + op.name() +
              " has out-degree > 1; only decision nodes may branch");
        }
        seq.children.push_back(Block::Leaf(cur));
        WSFLOW_ASSIGN_OR_RETURN(cur, SingleSuccessor(cur));
      }
      if (cur.valid() && !w_.Contains(cur)) {
        return Status::Internal("parser walked off the workflow");
      }
    }
    if (stop.valid() && cur != stop) {
      return Status::FailedPrecondition(
          "branch path ended before reaching the matching join " +
          w_.operation(stop).name());
    }
    return seq;
  }

  /// Parses the branch block delimited by `split` and its matching join.
  Result<Block> ParseBranch(OperationId split) {
    const Operation& split_op = w_.operation(split);
    if (w_.out_degree(split) < 2) {
      return Status::FailedPrecondition(
          "split node " + split_op.name() + " has out-degree < 2");
    }
    WSFLOW_ASSIGN_OR_RETURN(OperationId join, FindMatchingJoin(split));
    const Operation& join_op = w_.operation(join);
    if (join_op.type() != ComplementType(split_op.type())) {
      return Status::FailedPrecondition(
          "split " + split_op.name() + " (" +
          std::string(OperationTypeToString(split_op.type())) +
          ") matched by " + join_op.name() + " (" +
          std::string(OperationTypeToString(join_op.type())) +
          "), which is not its complement");
    }
    WSFLOW_RETURN_IF_ERROR(MarkVisited(join));

    Block branch;
    branch.kind = Block::Kind::kBranch;
    branch.split = split;
    branch.join = join;
    branch.branch_type = split_op.type();

    std::vector<double> weights;
    for (TransitionId t : w_.out_edges(split)) {
      const Transition& edge = w_.transition(t);
      weights.push_back(edge.branch_weight);
      if (edge.to == join) {
        // Empty branch body: the split feeds the join directly.
        Block empty;
        empty.kind = Block::Kind::kSequence;
        branch.children.push_back(std::move(empty));
      } else {
        WSFLOW_ASSIGN_OR_RETURN(Block body, ParseSequence(edge.to, join));
        branch.children.push_back(std::move(body));
      }
    }
    if (w_.in_degree(join) != branch.children.size()) {
      return Status::FailedPrecondition(
          "join " + join_op.name() + " has in-degree " +
          std::to_string(w_.in_degree(join)) + " but split " +
          split_op.name() + " has " +
          std::to_string(branch.children.size()) + " branches");
    }

    // Normalize branch probabilities. XOR picks exactly one branch; AND/OR
    // start all branches.
    branch.branch_probs.resize(branch.children.size(), 1.0);
    if (split_op.type() == OperationType::kXorSplit) {
      double total = 0;
      for (double wgt : weights) total += wgt;
      if (total <= 0) {
        return Status::FailedPrecondition(
            "XOR split " + split_op.name() +
            " has no positive branch weight");
      }
      for (size_t i = 0; i < weights.size(); ++i) {
        branch.branch_probs[i] = weights[i] / total;
      }
    }
    return branch;
  }

  /// Finds the complement of `split` by depth counting along the first
  /// outgoing path: splits push, joins pop; the join that returns the depth
  /// to zero is the match. In a well-formed workflow every path yields the
  /// same answer; divergent paths are caught later when branch bodies are
  /// parsed against this join.
  Result<OperationId> FindMatchingJoin(OperationId split) {
    int depth = 1;
    OperationId cur = split;
    size_t steps = 0;
    while (steps++ <= w_.num_operations()) {
      if (w_.out_degree(cur) == 0) {
        return Status::FailedPrecondition(
            "split " + w_.operation(split).name() +
            " has a path that reaches a sink before its complement");
      }
      cur = w_.transition(w_.out_edges(cur)[0]).to;
      const Operation& op = w_.operation(cur);
      if (op.is_split()) {
        ++depth;
      } else if (op.is_join()) {
        if (--depth == 0) return cur;
      }
    }
    return Status::FailedPrecondition(
        "no matching complement found for split " +
        w_.operation(split).name() + " (cycle suspected)");
  }

  /// The unique successor of `id`; invalid when `id` is a sink. Fails when
  /// out-degree exceeds one.
  Result<OperationId> SingleSuccessor(OperationId id) {
    const auto& outs = w_.out_edges(id);
    if (outs.empty()) return OperationId();
    if (outs.size() > 1) {
      return Status::FailedPrecondition(
          "node " + w_.operation(id).name() +
          " has multiple successors outside a branch block");
    }
    return w_.transition(outs[0]).to;
  }

  Status MarkVisited(OperationId id) {
    if (!visited_.insert(id.value).second) {
      return Status::FailedPrecondition(
          "operation " + w_.operation(id).name() +
          " reachable along two control paths; branches must be disjoint");
    }
    return Status::OK();
  }

  const Workflow& w_;
  std::unordered_set<uint32_t> visited_;
};

}  // namespace

OperationId HeadOperation(const Block& block) {
  switch (block.kind) {
    case Block::Kind::kLeaf:
      return block.op;
    case Block::Kind::kSequence:
      return block.children.empty() ? OperationId()
                                    : HeadOperation(block.children.front());
    case Block::Kind::kBranch:
      return block.split;
  }
  return OperationId();
}

OperationId TailOperation(const Block& block) {
  switch (block.kind) {
    case Block::Kind::kLeaf:
      return block.op;
    case Block::Kind::kSequence:
      return block.children.empty() ? OperationId()
                                    : TailOperation(block.children.back());
    case Block::Kind::kBranch:
      return block.join;
  }
  return OperationId();
}

Result<Block> DecomposeBlocks(const Workflow& w) {
  // Reject cyclic graphs up front; the parser's step bounds would catch
  // them too, but a topological check gives a clearer error.
  Result<std::vector<OperationId>> topo = w.TopologicalOrder();
  if (!topo.ok()) return topo.status();
  return BlockParser(w).Parse();
}

}  // namespace wsflow
