#include "src/workflow/bpel_import.h"

#include <fstream>
#include <sstream>

#include "src/workflow/builder.h"

namespace wsflow {

namespace {

class ProcessImporter {
 public:
  explicit ProcessImporter(double default_bits)
      : default_bits_(default_bits) {}

  Status EmitInto(WorkflowBuilder* b, const XmlNode& element) {
    const std::string& tag = element.tag();
    if (tag == "invoke") return EmitInvoke(b, element);
    if (tag == "sequence") return EmitChildren(b, element);
    if (tag == "flow") {
      return EmitBlock(b, element, OperationType::kAndSplit, "");
    }
    if (tag == "switch") {
      return EmitBlock(b, element, OperationType::kXorSplit, "case");
    }
    if (tag == "pick") {
      return EmitBlock(b, element, OperationType::kOrSplit, "branch");
    }
    return Status::ParseError("unknown process element <" + tag + ">");
  }

  Status EmitChildren(WorkflowBuilder* b, const XmlNode& parent) {
    for (const XmlNode& child : parent.children()) {
      WSFLOW_RETURN_IF_ERROR(EmitInto(b, child));
    }
    return Status::OK();
  }

 private:
  Result<double> InBits(const XmlNode& element) const {
    if (!element.HasAttr("in_bits")) return default_bits_;
    return element.DoubleAttr("in_bits");
  }

  Status EmitInvoke(WorkflowBuilder* b, const XmlNode& element) {
    WSFLOW_ASSIGN_OR_RETURN(std::string name, element.Attr("name"));
    WSFLOW_ASSIGN_OR_RETURN(double cycles, element.DoubleAttr("cycles"));
    WSFLOW_ASSIGN_OR_RETURN(double in_bits, InBits(element));
    b->Op(name, cycles, in_bits);
    return Status::OK();
  }

  /// Emits a flow/switch/pick block. `branch_tag` constrains the direct
  /// children ("case"/"branch"); empty means any child is its own branch
  /// (the <flow> form).
  Status EmitBlock(WorkflowBuilder* b, const XmlNode& element,
                   OperationType split_type, const std::string& branch_tag) {
    WSFLOW_ASSIGN_OR_RETURN(std::string name, element.Attr("name"));
    WSFLOW_ASSIGN_OR_RETURN(double cycles, element.DoubleAttr("cycles"));
    WSFLOW_ASSIGN_OR_RETURN(double in_bits, InBits(element));
    double join_cycles = cycles;
    if (element.HasAttr("join_cycles")) {
      WSFLOW_ASSIGN_OR_RETURN(join_cycles, element.DoubleAttr("join_cycles"));
    }
    double join_bits = default_bits_;
    if (element.HasAttr("join_bits")) {
      WSFLOW_ASSIGN_OR_RETURN(join_bits, element.DoubleAttr("join_bits"));
    }

    b->Split(split_type, name, cycles, in_bits);
    if (element.children().empty()) {
      return Status::ParseError("<" + element.tag() + " name=\"" + name +
                                "\"> has no branches");
    }
    for (const XmlNode& child : element.children()) {
      double weight = 1.0;
      if (!branch_tag.empty()) {
        if (child.tag() != branch_tag) {
          return Status::ParseError("<" + element.tag() +
                                    "> children must be <" + branch_tag +
                                    ">, got <" + child.tag() + ">");
        }
        if (child.HasAttr("probability")) {
          WSFLOW_ASSIGN_OR_RETURN(weight, child.DoubleAttr("probability"));
        }
      }
      b->Branch(weight);
      if (branch_tag.empty()) {
        // <flow>: the child itself is the branch content.
        WSFLOW_RETURN_IF_ERROR(EmitInto(b, child));
      } else {
        // <case>/<branch>: the wrapper's children are the content; an
        // empty wrapper is an empty branch.
        WSFLOW_RETURN_IF_ERROR(EmitChildren(b, child));
      }
    }
    b->Join(name + "__join", join_cycles, join_bits);
    return Status::OK();
  }

  double default_bits_;
};

}  // namespace

Result<Workflow> WorkflowFromProcessXml(const XmlNode& root) {
  if (root.tag() != "process") {
    return Status::ParseError("expected <process>, got <" + root.tag() +
                              ">");
  }
  double default_bits = 0;
  if (root.HasAttr("default_bits")) {
    WSFLOW_ASSIGN_OR_RETURN(default_bits, root.DoubleAttr("default_bits"));
  }
  WorkflowBuilder builder(root.Attr("name").value_or("process"));
  ProcessImporter importer(default_bits);
  WSFLOW_RETURN_IF_ERROR(importer.EmitChildren(&builder, root));
  Result<Workflow> w = builder.Build();
  if (!w.ok()) return w.status().WithContext("importing <process>");
  return w;
}

Result<Workflow> WorkflowFromProcessString(const std::string& text) {
  WSFLOW_ASSIGN_OR_RETURN(XmlNode root, ParseXml(text));
  return WorkflowFromProcessXml(root);
}

Result<Workflow> LoadProcessWorkflow(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return WorkflowFromProcessString(buffer.str());
}

}  // namespace wsflow
