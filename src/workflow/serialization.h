// wsflow: workflow persistence in a WSFL-inspired XML format.
//
// Format (all sizes in bits, cycles in CPU cycles):
//
//   <workflow name="rendezvous">
//     <operation id="0" name="request" type="operational" cycles="5e6"/>
//     <operation id="1" name="avail" type="xor-split" cycles="1e6"/>
//     ...
//     <transition from="0" to="1" bits="69888" weight="1"/>
//   </workflow>
//
// Operation ids in the file must be the dense indices 0..M-1; transitions
// refer to those ids. Round-tripping preserves ids, names, types, cycles,
// message sizes and branch weights exactly.

#ifndef WSFLOW_WORKFLOW_SERIALIZATION_H_
#define WSFLOW_WORKFLOW_SERIALIZATION_H_

#include <string>

#include "src/common/result.h"
#include "src/workflow/workflow.h"
#include "src/workflow/xml.h"

namespace wsflow {

/// Renders `w` as a <workflow> XML document.
std::string WorkflowToXmlString(const Workflow& w);

/// Converts `w` to its XML element form.
XmlNode WorkflowToXml(const Workflow& w);

/// Parses a workflow from XML text. Structural validation is not implied;
/// call ValidateAll separately when well-formedness is required.
Result<Workflow> WorkflowFromXmlString(const std::string& text);

/// Converts a parsed <workflow> element to a Workflow.
Result<Workflow> WorkflowFromXml(const XmlNode& root);

/// Writes `w` to `path` in XML form.
Status SaveWorkflow(const Workflow& w, const std::string& path);

/// Loads a workflow from the XML file at `path`.
Result<Workflow> LoadWorkflow(const std::string& path);

}  // namespace wsflow

#endif  // WSFLOW_WORKFLOW_SERIALIZATION_H_
