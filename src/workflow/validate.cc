#include "src/workflow/validate.h"

#include "src/workflow/blocks.h"

namespace wsflow {

Status ValidateWorkflow(const Workflow& w) {
  if (w.num_operations() == 0) {
    return Status::FailedPrecondition("workflow has no operations");
  }
  if (w.Sinks().size() != 1) {
    return Status::FailedPrecondition(
        "well-formed workflow must have exactly one sink, found " +
        std::to_string(w.Sinks().size()));
  }
  // DecomposeBlocks performs the remaining checks: single source,
  // acyclicity, connectivity, degree rules and complement matching.
  Result<Block> blocks = DecomposeBlocks(w);
  if (!blocks.ok()) return blocks.status();
  return Status::OK();
}

Status ValidateQuantities(const Workflow& w) {
  for (const Operation& op : w.operations()) {
    if (op.cycles() < 0) {
      return Status::InvalidArgument("operation " + op.name() +
                                     " has negative cycles");
    }
  }
  for (const Transition& t : w.transitions()) {
    if (t.message_bits < 0) {
      return Status::InvalidArgument("transition with negative message size");
    }
    if (t.branch_weight < 0) {
      return Status::InvalidArgument("transition with negative branch weight");
    }
  }
  for (const Operation& op : w.operations()) {
    if (op.type() == OperationType::kXorSplit) {
      double total = 0;
      for (TransitionId t : w.out_edges(op.id())) {
        total += w.transition(t).branch_weight;
      }
      if (total <= 0) {
        return Status::InvalidArgument(
            "XOR split " + op.name() + " has non-positive weight sum");
      }
    }
  }
  return Status::OK();
}

Status ValidateAll(const Workflow& w) {
  WSFLOW_RETURN_IF_ERROR(ValidateWorkflow(w));
  return ValidateQuantities(w);
}

}  // namespace wsflow
