// wsflow: GraphViz DOT export for workflows, networks and deployments.
//
// Produces `dot`-renderable descriptions: workflows as digraphs with
// decision nodes shaped as diamonds and message sizes as edge labels;
// deployed workflows additionally color operations by hosting server so a
// mapping can be inspected visually.

#ifndef WSFLOW_WORKFLOW_DOT_H_
#define WSFLOW_WORKFLOW_DOT_H_

#include <string>

#include "src/deploy/mapping.h"
#include "src/network/topology.h"
#include "src/workflow/workflow.h"

namespace wsflow {

/// Renders the workflow as a DOT digraph.
std::string WorkflowToDot(const Workflow& w);

/// Renders the workflow with operations colored by their hosting server
/// under `m` (unassigned operations stay uncolored). Includes a legend of
/// server names.
std::string DeploymentToDot(const Workflow& w, const Network& n,
                            const Mapping& m);

/// Renders the server network as a DOT graph (undirected).
std::string NetworkToDot(const Network& n);

}  // namespace wsflow

#endif  // WSFLOW_WORKFLOW_DOT_H_
