#include "src/workflow/dot.h"

#include <sstream>

#include "src/common/string_util.h"

namespace wsflow {

namespace {

/// Escapes a DOT double-quoted string.
std::string DotEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* ShapeFor(OperationType type) {
  return IsDecision(type) ? "diamond" : "box";
}

// A qualitative palette that stays readable on white; cycled when the farm
// has more servers than entries.
constexpr const char* kPalette[] = {
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
    "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
};
constexpr size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

void EmitOperations(const Workflow& w, const Network* n, const Mapping* m,
                    std::ostringstream& os) {
  for (const Operation& op : w.operations()) {
    os << "  op" << op.id().value << " [label=\"" << DotEscape(op.name());
    if (op.is_decision()) {
      os << "\\n(" << OperationTypeToString(op.type()) << ")";
    }
    os << "\" shape=" << ShapeFor(op.type());
    if (m != nullptr) {
      ServerId s = m->ServerOf(op.id());
      if (s.valid()) {
        os << " style=filled fillcolor=\"" << kPalette[s.value % kPaletteSize]
           << "\"";
        if (n != nullptr && n->Contains(s)) {
          os << " tooltip=\"" << DotEscape(n->server(s).name()) << "\"";
        }
      }
    }
    os << "];\n";
  }
}

void EmitTransitions(const Workflow& w, std::ostringstream& os) {
  for (const Transition& t : w.transitions()) {
    os << "  op" << t.from.value << " -> op" << t.to.value << " [label=\""
       << FormatBits(t.message_bits);
    if (w.operation(t.from).type() == OperationType::kXorSplit) {
      os << "\\nw=" << FormatDouble(t.branch_weight, 3);
    }
    os << "\"];\n";
  }
}

}  // namespace

std::string WorkflowToDot(const Workflow& w) {
  std::ostringstream os;
  os << "digraph \"" << DotEscape(w.name()) << "\" {\n"
     << "  rankdir=LR;\n  node [fontsize=10]; edge [fontsize=9];\n";
  EmitOperations(w, nullptr, nullptr, os);
  EmitTransitions(w, os);
  os << "}\n";
  return os.str();
}

std::string DeploymentToDot(const Workflow& w, const Network& n,
                            const Mapping& m) {
  std::ostringstream os;
  os << "digraph \"" << DotEscape(w.name()) << "\" {\n"
     << "  rankdir=LR;\n  node [fontsize=10]; edge [fontsize=9];\n";
  EmitOperations(w, &n, &m, os);
  EmitTransitions(w, os);
  // Legend: one swatch per server.
  os << "  subgraph cluster_legend {\n    label=\"servers\";\n";
  for (const Server& s : n.servers()) {
    os << "    legend" << s.id().value << " [label=\""
       << DotEscape(s.name()) << "\\n" << FormatDouble(s.power_hz() / 1e9, 3)
       << " GHz\" shape=box style=filled fillcolor=\""
       << kPalette[s.id().value % kPaletteSize] << "\"];\n";
  }
  os << "  }\n}\n";
  return os.str();
}

std::string NetworkToDot(const Network& n) {
  std::ostringstream os;
  os << "graph \"" << DotEscape(n.name()) << "\" {\n"
     << "  node [shape=box fontsize=10]; edge [fontsize=9];\n";
  for (const Server& s : n.servers()) {
    os << "  s" << s.id().value << " [label=\"" << DotEscape(s.name())
       << "\\n" << FormatDouble(s.power_hz() / 1e9, 3) << " GHz\"];\n";
  }
  if (n.has_bus()) {
    const Link& bus = n.link(n.bus());
    os << "  bus [label=\"bus\\n" << FormatDouble(bus.speed_bps / 1e6, 4)
       << " Mbps\" shape=ellipse];\n";
    for (const Server& s : n.servers()) {
      os << "  s" << s.id().value << " -- bus;\n";
    }
  } else {
    for (const Link& link : n.links()) {
      os << "  s" << link.a.value << " -- s" << link.b.value << " [label=\""
         << FormatDouble(link.speed_bps / 1e6, 4) << " Mbps\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace wsflow
