#include "src/workflow/operation.h"

namespace wsflow {

bool IsDecision(OperationType type) {
  return type != OperationType::kOperational;
}

bool IsSplit(OperationType type) {
  switch (type) {
    case OperationType::kAndSplit:
    case OperationType::kOrSplit:
    case OperationType::kXorSplit:
      return true;
    default:
      return false;
  }
}

bool IsJoin(OperationType type) {
  switch (type) {
    case OperationType::kAndJoin:
    case OperationType::kOrJoin:
    case OperationType::kXorJoin:
      return true;
    default:
      return false;
  }
}

OperationType ComplementType(OperationType type) {
  switch (type) {
    case OperationType::kAndSplit: return OperationType::kAndJoin;
    case OperationType::kAndJoin: return OperationType::kAndSplit;
    case OperationType::kOrSplit: return OperationType::kOrJoin;
    case OperationType::kOrJoin: return OperationType::kOrSplit;
    case OperationType::kXorSplit: return OperationType::kXorJoin;
    case OperationType::kXorJoin: return OperationType::kXorSplit;
    case OperationType::kOperational: return OperationType::kOperational;
  }
  return OperationType::kOperational;
}

std::string_view OperationTypeToString(OperationType type) {
  switch (type) {
    case OperationType::kOperational: return "operational";
    case OperationType::kAndSplit: return "and-split";
    case OperationType::kAndJoin: return "and-join";
    case OperationType::kOrSplit: return "or-split";
    case OperationType::kOrJoin: return "or-join";
    case OperationType::kXorSplit: return "xor-split";
    case OperationType::kXorJoin: return "xor-join";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, OperationType type) {
  return os << OperationTypeToString(type);
}

}  // namespace wsflow
