// wsflow: execution-probability annotation.
//
// XOR decision nodes execute exactly one of their branches, so in a graph
// workflow each operation and message has an *execution probability*
// (paper §3.4: "all the algorithms of this family assign an execution
// probability to each operation (and thus, each message)"). The paper
// obtains the XOR branch weights by monitoring initial executions or simple
// prediction; here they are part of the workflow model (Transition::
// branch_weight) and this module derives per-node / per-edge probabilities.
//
// AND and OR branches all start executing, so they inherit the enclosing
// probability unchanged. Probabilities compose multiplicatively through
// nested XOR blocks. Edge probabilities are assigned structurally from the
// block tree: a branch's entry and exit messages (including the direct
// split->join message of an empty branch) carry the *branch's* probability,
// and messages between consecutive sequence elements carry the enclosing
// context's probability.

#ifndef WSFLOW_WORKFLOW_PROBABILITY_H_
#define WSFLOW_WORKFLOW_PROBABILITY_H_

#include <vector>

#include "src/common/result.h"
#include "src/workflow/blocks.h"
#include "src/workflow/workflow.h"

namespace wsflow {

/// Per-operation and per-transition execution probabilities, indexed by
/// OperationId::value / TransitionId::value.
struct ExecutionProfile {
  std::vector<double> op_prob;
  std::vector<double> edge_prob;

  double OperationProb(OperationId id) const { return op_prob[id.value]; }
  double TransitionProb(TransitionId id) const { return edge_prob[id.value]; }

  /// Probability-weighted cycles of an operation: p(op) * C(op). This is the
  /// amortized cost over many workflow executions used by the graph-aware
  /// deployment algorithms.
  double WeightedCycles(const Workflow& w, OperationId id) const {
    return OperationProb(id) * w.operation(id).cycles();
  }

  /// Probability-weighted message size of a transition in bits.
  double WeightedMessageBits(const Workflow& w, TransitionId id) const {
    return TransitionProb(id) * w.transition(id).message_bits;
  }
};

/// Computes the execution profile of a well-formed workflow. For line
/// workflows every probability is 1. Fails when the workflow is not
/// well-formed.
Result<ExecutionProfile> ComputeExecutionProfile(const Workflow& w);

/// As above but reuses an existing block decomposition of `w`.
ExecutionProfile ComputeExecutionProfile(const Workflow& w,
                                         const Block& root);

/// Returns a profile with every probability set to 1 (single-execution
/// semantics, used for line workflows where all operations always run).
ExecutionProfile UnitProfile(const Workflow& w);

}  // namespace wsflow

#endif  // WSFLOW_WORKFLOW_PROBABILITY_H_
