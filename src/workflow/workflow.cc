#include "src/workflow/workflow.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "src/common/logging.h"

namespace wsflow {

OperationId Workflow::AddOperation(std::string name, OperationType type,
                                   double cycles) {
  WSFLOW_CHECK_GE(cycles, 0.0);
  OperationId id(static_cast<uint32_t>(operations_.size()));
  operations_.emplace_back(id, std::move(name), type, cycles);
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

Result<TransitionId> Workflow::AddTransition(OperationId from, OperationId to,
                                             double message_bits,
                                             double branch_weight) {
  if (!Contains(from) || !Contains(to)) {
    return Status::NotFound("transition endpoint not in workflow");
  }
  if (from == to) {
    return Status::InvalidArgument("self-transition on operation " +
                                   operation(from).name());
  }
  if (message_bits < 0) {
    return Status::InvalidArgument("negative message size");
  }
  if (branch_weight < 0) {
    return Status::InvalidArgument("negative branch weight");
  }
  if (FindTransition(from, to).ok()) {
    // Paper §2.2: each pair of operations is connected by only one message.
    std::ostringstream os;
    os << "duplicate transition " << from << " -> " << to;
    return Status::AlreadyExists(os.str());
  }
  TransitionId id(static_cast<uint32_t>(transitions_.size()));
  transitions_.push_back(
      Transition{id, from, to, message_bits, branch_weight});
  out_[from.value].push_back(id);
  in_[to.value].push_back(id);
  return id;
}

const Operation& Workflow::operation(OperationId id) const {
  WSFLOW_CHECK(Contains(id));
  return operations_[id.value];
}

Operation& Workflow::mutable_operation(OperationId id) {
  WSFLOW_CHECK(Contains(id));
  return operations_[id.value];
}

const Transition& Workflow::transition(TransitionId id) const {
  WSFLOW_CHECK_LT(id.value, transitions_.size());
  return transitions_[id.value];
}

Transition& Workflow::mutable_transition(TransitionId id) {
  WSFLOW_CHECK_LT(id.value, transitions_.size());
  return transitions_[id.value];
}

const std::vector<TransitionId>& Workflow::out_edges(OperationId id) const {
  WSFLOW_CHECK(Contains(id));
  return out_[id.value];
}

const std::vector<TransitionId>& Workflow::in_edges(OperationId id) const {
  WSFLOW_CHECK(Contains(id));
  return in_[id.value];
}

Result<TransitionId> Workflow::FindTransition(OperationId from,
                                              OperationId to) const {
  if (!Contains(from) || !Contains(to)) {
    return Status::NotFound("transition endpoint not in workflow");
  }
  for (TransitionId t : out_[from.value]) {
    if (transitions_[t.value].to == to) return t;
  }
  std::ostringstream os;
  os << "no transition " << from << " -> " << to;
  return Status::NotFound(os.str());
}

std::vector<OperationId> Workflow::Sources() const {
  std::vector<OperationId> out;
  for (const Operation& op : operations_) {
    if (in_[op.id().value].empty()) out.push_back(op.id());
  }
  return out;
}

std::vector<OperationId> Workflow::Sinks() const {
  std::vector<OperationId> out;
  for (const Operation& op : operations_) {
    if (out_[op.id().value].empty()) out.push_back(op.id());
  }
  return out;
}

bool Workflow::IsLine() const { return LineOrder().ok(); }

Result<std::vector<OperationId>> Workflow::LineOrder() const {
  if (operations_.empty()) {
    return Status::FailedPrecondition("empty workflow is not a line");
  }
  std::vector<OperationId> sources = Sources();
  if (sources.size() != 1) {
    return Status::FailedPrecondition("line workflow must have one source");
  }
  std::vector<OperationId> order;
  order.reserve(operations_.size());
  OperationId cur = sources[0];
  for (;;) {
    order.push_back(cur);
    const auto& outs = out_[cur.value];
    if (outs.empty()) break;
    if (outs.size() > 1 || in_[cur.value].size() > 1) {
      return Status::FailedPrecondition(
          "workflow has branching; not a line");
    }
    cur = transitions_[outs[0].value].to;
    if (order.size() > operations_.size()) {
      return Status::FailedPrecondition("workflow contains a cycle");
    }
  }
  if (order.size() != operations_.size()) {
    return Status::FailedPrecondition(
        "workflow is disconnected; not a line");
  }
  return order;
}

Result<std::vector<OperationId>> Workflow::TopologicalOrder() const {
  std::vector<size_t> indegree(operations_.size());
  for (size_t i = 0; i < operations_.size(); ++i) indegree[i] = in_[i].size();
  std::deque<OperationId> ready;
  for (size_t i = 0; i < operations_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(OperationId(static_cast<uint32_t>(i)));
  }
  std::vector<OperationId> order;
  order.reserve(operations_.size());
  while (!ready.empty()) {
    OperationId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (TransitionId t : out_[id.value]) {
      OperationId next = transitions_[t.value].to;
      if (--indegree[next.value] == 0) ready.push_back(next);
    }
  }
  if (order.size() != operations_.size()) {
    return Status::FailedPrecondition("workflow contains a cycle");
  }
  return order;
}

double Workflow::TotalCycles() const {
  double total = 0;
  for (const Operation& op : operations_) total += op.cycles();
  return total;
}

double Workflow::TotalMessageBits() const {
  double total = 0;
  for (const Transition& t : transitions_) total += t.message_bits;
  return total;
}

size_t Workflow::NumDecisionNodes() const {
  size_t n = 0;
  for (const Operation& op : operations_) {
    if (op.is_decision()) ++n;
  }
  return n;
}

Result<Workflow> MakeLineWorkflow(const std::string& name,
                                  const std::vector<double>& cycles,
                                  const std::vector<double>& message_bits) {
  if (cycles.empty()) {
    return Status::InvalidArgument("line workflow needs >= 1 operation");
  }
  if (message_bits.size() + 1 != cycles.size()) {
    return Status::InvalidArgument(
        "line workflow needs exactly one message per consecutive pair");
  }
  Workflow w(name);
  std::vector<OperationId> ids;
  ids.reserve(cycles.size());
  for (size_t i = 0; i < cycles.size(); ++i) {
    ids.push_back(w.AddOperation("op" + std::to_string(i + 1),
                                 OperationType::kOperational, cycles[i]));
  }
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    WSFLOW_ASSIGN_OR_RETURN(TransitionId t,
                            w.AddTransition(ids[i], ids[i + 1],
                                            message_bits[i]));
    (void)t;
  }
  return w;
}

}  // namespace wsflow
