#include "src/workflow/xml.h"

#include <cctype>
#include <sstream>

#include "src/common/string_util.h"

namespace wsflow {

void XmlNode::SetAttr(const std::string& key, std::string value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(key, std::move(value));
}

void XmlNode::SetAttr(const std::string& key, double value) {
  SetAttr(key, FormatDouble(value, 17));
}

void XmlNode::SetAttr(const std::string& key, int64_t value) {
  SetAttr(key, std::to_string(value));
}

Result<std::string> XmlNode::Attr(const std::string& key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return v;
  }
  return Status::NotFound("element <" + tag_ + "> has no attribute '" + key +
                          "'");
}

Result<double> XmlNode::DoubleAttr(const std::string& key) const {
  WSFLOW_ASSIGN_OR_RETURN(std::string raw, Attr(key));
  return ParseDouble(raw);
}

Result<int64_t> XmlNode::IntAttr(const std::string& key) const {
  WSFLOW_ASSIGN_OR_RETURN(std::string raw, Attr(key));
  return ParseInt64(raw);
}

bool XmlNode::HasAttr(const std::string& key) const { return Attr(key).ok(); }

XmlNode& XmlNode::AddChild(std::string tag) {
  children_.emplace_back(std::move(tag));
  return children_.back();
}

Result<const XmlNode*> XmlNode::Child(const std::string& tag) const {
  for (const XmlNode& c : children_) {
    if (c.tag() == tag) return &c;
  }
  return Status::NotFound("element <" + tag_ + "> has no child <" + tag + ">");
}

std::vector<const XmlNode*> XmlNode::Children(const std::string& tag) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& c : children_) {
    if (c.tag() == tag) out.push_back(&c);
  }
  return out;
}

std::string XmlEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string XmlNode::ToString(int indent) const {
  std::ostringstream os;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad << "<" << tag_;
  for (const auto& [k, v] : attributes_) {
    os << " " << k << "=\"" << XmlEscape(v) << "\"";
  }
  if (children_.empty() && text_.empty()) {
    os << "/>\n";
    return os.str();
  }
  os << ">";
  if (!text_.empty()) os << XmlEscape(text_);
  if (!children_.empty()) {
    os << "\n";
    for (const XmlNode& c : children_) os << c.ToString(indent + 1);
    os << pad;
  }
  os << "</" << tag_ << ">\n";
  return os.str();
}

std::string WriteXml(const XmlNode& root) {
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root.ToString();
}

namespace {

/// Hand-rolled recursive-descent parser for the supported XML subset.
class XmlParser {
 public:
  explicit XmlParser(std::string_view input) : in_(input) {}

  Result<XmlNode> Parse() {
    SkipProlog();
    WSFLOW_ASSIGN_OR_RETURN(XmlNode root, ParseElement());
    SkipWhitespaceAndComments();
    if (pos_ != in_.size()) {
      return Error("trailing content after the root element");
    }
    return root;
  }

 private:
  Status Error(const std::string& what) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < in_.size(); ++i) {
      if (in_[i] == '\n') ++line;
    }
    return Status::ParseError("XML line " + std::to_string(line) + ": " +
                              what);
  }

  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool Consume(std::string_view token) {
    if (in_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      SkipWhitespace();
      if (Consume("<!--")) {
        size_t end = in_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? in_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  void SkipProlog() {
    SkipWhitespace();
    if (Consume("<?xml")) {
      size_t end = in_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? in_.size() : end + 2;
    }
    SkipWhitespaceAndComments();
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::string> ParseQuoted() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected a quoted attribute value");
    }
    char quote = Peek();
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) ++pos_;
    if (AtEnd()) return Error("unterminated attribute value");
    std::string raw(in_.substr(start, pos_ - start));
    ++pos_;
    return Unescape(raw);
  }

  Result<std::string> Unescape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out += '&';
      else if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else return Error("unknown entity '&" + std::string(entity) + ";'");
      i = semi;
    }
    return out;
  }

  Result<XmlNode> ParseElement() {
    if (!Consume("<")) return Error("expected '<'");
    WSFLOW_ASSIGN_OR_RETURN(std::string tag, ParseName());
    XmlNode node(tag);
    for (;;) {
      SkipWhitespace();
      if (Consume("/>")) return node;
      if (Consume(">")) break;
      WSFLOW_ASSIGN_OR_RETURN(std::string key, ParseName());
      SkipWhitespace();
      if (!Consume("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      WSFLOW_ASSIGN_OR_RETURN(std::string value, ParseQuoted());
      node.SetAttr(key, std::move(value));
    }
    // Content: interleaved text, children and comments until the close tag.
    for (;;) {
      if (AtEnd()) return Error("unterminated element <" + tag + ">");
      if (Consume("<!--")) {
        size_t end = in_.find("-->", pos_);
        if (end == std::string_view::npos) return Error("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (in_.substr(pos_, 2) == "</") {
        pos_ += 2;
        WSFLOW_ASSIGN_OR_RETURN(std::string close, ParseName());
        if (close != tag) {
          return Error("mismatched close tag </" + close + "> for <" + tag +
                       ">");
        }
        SkipWhitespace();
        if (!Consume(">")) return Error("expected '>' after close tag");
        // Inter-element whitespace is not significant content.
        node.set_text(std::string(Trim(node.text())));
        return node;
      }
      if (Peek() == '<') {
        WSFLOW_ASSIGN_OR_RETURN(XmlNode child, ParseElement());
        node.children().push_back(std::move(child));
        continue;
      }
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      WSFLOW_ASSIGN_OR_RETURN(std::string text,
                              Unescape(in_.substr(start, pos_ - start)));
      node.append_text(text);
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<XmlNode> ParseXml(std::string_view input) {
  return XmlParser(input).Parse();
}

}  // namespace wsflow
