// wsflow: workflow well-formedness validation.
//
// A workflow is accepted by the deployment algorithms when it passes
// ValidateWorkflow: it must be a non-empty, connected, acyclic digraph with a
// single source and sink whose decision nodes nest like parentheses
// (paper §2.2). Line workflows are a special case and always validate.

#ifndef WSFLOW_WORKFLOW_VALIDATE_H_
#define WSFLOW_WORKFLOW_VALIDATE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/workflow/workflow.h"

namespace wsflow {

/// Checks structural well-formedness (see file comment). Returns OK or a
/// FailedPrecondition explaining the first violation found.
Status ValidateWorkflow(const Workflow& w);

/// Additional sanity checks on quantities: non-negative cycles, positive
/// message sizes, XOR splits with positive total branch weight.
Status ValidateQuantities(const Workflow& w);

/// ValidateWorkflow + ValidateQuantities.
Status ValidateAll(const Workflow& w);

}  // namespace wsflow

#endif  // WSFLOW_WORKFLOW_VALIDATE_H_
