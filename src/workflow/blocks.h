// wsflow: block decomposition of well-formed workflows.
//
// A workflow is *well-formed* (paper §2.2) when every decision node `a` has a
// complement `/a` and every path out of `a` passes through `/a` — decision
// nodes nest like parentheses. Such a workflow decomposes uniquely into a
// tree of blocks:
//
//   * a leaf block is a single operation;
//   * a sequence block is a chain of blocks executed one after the other;
//   * a branch block is a split node, k parallel branch bodies (each itself a
//     sequence, possibly empty), and the matching join node.
//
// The decomposition is the foundation for well-formedness validation,
// execution-probability annotation (probability.h) and the graph
// execution-time evaluator (cost/execution_time.h).

#ifndef WSFLOW_WORKFLOW_BLOCKS_H_
#define WSFLOW_WORKFLOW_BLOCKS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/workflow/workflow.h"

namespace wsflow {

/// One node of the block tree.
struct Block {
  enum class Kind {
    kLeaf,      ///< A single operation.
    kSequence,  ///< Children executed in order.
    kBranch,    ///< split -> parallel branch bodies -> join.
  };

  Kind kind = Kind::kLeaf;

  /// kLeaf: the operation.
  OperationId op;

  /// kBranch: the split / join decision operations delimiting the block.
  OperationId split;
  OperationId join;
  /// kBranch: kAndSplit, kOrSplit or kXorSplit.
  OperationType branch_type = OperationType::kOperational;
  /// kBranch: normalized execution probability per branch body. For XOR
  /// splits these are the branch weights normalized to sum 1; for AND/OR
  /// every entry is 1 (all branches start).
  std::vector<double> branch_probs;

  /// kSequence: the elements; kBranch: one body per outgoing split edge,
  /// in the split's edge insertion order.
  std::vector<Block> children;

  static Block Leaf(OperationId id) {
    Block b;
    b.kind = Kind::kLeaf;
    b.op = id;
    return b;
  }

  /// Number of operations contained in this block (leaves + split/join
  /// delimiters of nested branch blocks).
  size_t CountOperations() const;

  /// Multi-line indented rendering for debugging.
  std::string ToString(const Workflow& w, int indent = 0) const;
};

/// Decomposes `w` into its block tree. The root is a sequence block (or a
/// leaf for single-operation workflows). Fails with FailedPrecondition when
/// the workflow is not well-formed: multiple sources/sinks, branch paths that
/// do not reconverge at the matching complement node, mismatched split/join
/// types, degree violations, cycles, or disconnected operations.
Result<Block> DecomposeBlocks(const Workflow& w);

/// The first operation executed inside `block` (the split for branch
/// blocks); invalid for an empty sequence.
OperationId HeadOperation(const Block& block);

/// The last operation executed inside `block` (the join for branch
/// blocks); invalid for an empty sequence.
OperationId TailOperation(const Block& block);

}  // namespace wsflow

#endif  // WSFLOW_WORKFLOW_BLOCKS_H_
