// wsflow: structural workflow metrics.
//
// Quantifies the shape properties the paper's §4.2 workload taxonomy talks
// about — bushy graphs are "shorter in length but with a higher fan-out",
// lengthy graphs "involve lengthy paths" — so generators can be validated
// and workloads characterized in reports.

#ifndef WSFLOW_WORKFLOW_METRICS_H_
#define WSFLOW_WORKFLOW_METRICS_H_

#include <cstddef>
#include <string>

#include "src/common/result.h"
#include "src/workflow/blocks.h"
#include "src/workflow/workflow.h"

namespace wsflow {

struct WorkflowMetrics {
  size_t num_operations = 0;
  size_t num_transitions = 0;
  size_t num_decision_nodes = 0;
  /// num_decision_nodes / num_operations.
  double decision_fraction = 0;
  /// Operations on the longest control path source -> sink (counting both
  /// ends); equals num_operations for a line.
  size_t depth = 0;
  /// Largest split fan-out; 0 when there are no splits.
  size_t max_fan_out = 0;
  /// Deepest branch-block nesting; 0 for lines.
  size_t max_nesting = 0;
  /// Expected number of operations executed in one run (XOR arms weighted
  /// by probability); equals num_operations when there is no XOR.
  double expected_executed_operations = 0;
  /// Sum of C(op) over all operations.
  double total_cycles = 0;
  /// Expected executed cycles per run (probability-weighted).
  double expected_cycles = 0;
  /// Sum of message bits over all transitions.
  double total_message_bits = 0;
  /// Expected transferred bits per run (probability-weighted).
  double expected_message_bits = 0;

  /// One-line rendering for reports.
  std::string ToString() const;
};

/// Computes the metrics; requires a well-formed workflow.
Result<WorkflowMetrics> ComputeWorkflowMetrics(const Workflow& w);

}  // namespace wsflow

#endif  // WSFLOW_WORKFLOW_METRICS_H_
