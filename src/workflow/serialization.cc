#include "src/workflow/serialization.h"

#include <fstream>
#include <sstream>

namespace wsflow {

namespace {

Result<OperationType> TypeFromString(const std::string& s) {
  for (OperationType t :
       {OperationType::kOperational, OperationType::kAndSplit,
        OperationType::kAndJoin, OperationType::kOrSplit,
        OperationType::kOrJoin, OperationType::kXorSplit,
        OperationType::kXorJoin}) {
    if (OperationTypeToString(t) == s) return t;
  }
  return Status::ParseError("unknown operation type '" + s + "'");
}

}  // namespace

XmlNode WorkflowToXml(const Workflow& w) {
  XmlNode root("workflow");
  root.SetAttr("name", w.name());
  for (const Operation& op : w.operations()) {
    XmlNode& node = root.AddChild("operation");
    node.SetAttr("id", static_cast<int64_t>(op.id().value));
    node.SetAttr("name", op.name());
    node.SetAttr("type", std::string(OperationTypeToString(op.type())));
    node.SetAttr("cycles", op.cycles());
  }
  for (const Transition& t : w.transitions()) {
    XmlNode& node = root.AddChild("transition");
    node.SetAttr("from", static_cast<int64_t>(t.from.value));
    node.SetAttr("to", static_cast<int64_t>(t.to.value));
    node.SetAttr("bits", t.message_bits);
    node.SetAttr("weight", t.branch_weight);
  }
  return root;
}

std::string WorkflowToXmlString(const Workflow& w) {
  return WriteXml(WorkflowToXml(w));
}

Result<Workflow> WorkflowFromXml(const XmlNode& root) {
  if (root.tag() != "workflow") {
    return Status::ParseError("expected <workflow>, got <" + root.tag() +
                              ">");
  }
  Workflow w(root.Attr("name").value_or("workflow"));
  std::vector<const XmlNode*> ops = root.Children("operation");
  for (size_t i = 0; i < ops.size(); ++i) {
    const XmlNode& node = *ops[i];
    WSFLOW_ASSIGN_OR_RETURN(int64_t id, node.IntAttr("id"));
    if (id != static_cast<int64_t>(i)) {
      return Status::ParseError(
          "operation ids must be dense and in order; expected " +
          std::to_string(i) + ", got " + std::to_string(id));
    }
    WSFLOW_ASSIGN_OR_RETURN(std::string name, node.Attr("name"));
    WSFLOW_ASSIGN_OR_RETURN(std::string type_str, node.Attr("type"));
    WSFLOW_ASSIGN_OR_RETURN(OperationType type, TypeFromString(type_str));
    WSFLOW_ASSIGN_OR_RETURN(double cycles, node.DoubleAttr("cycles"));
    if (cycles < 0) {
      return Status::ParseError("operation '" + name + "' has negative cycles");
    }
    w.AddOperation(name, type, cycles);
  }
  for (const XmlNode* node : root.Children("transition")) {
    WSFLOW_ASSIGN_OR_RETURN(int64_t from, node->IntAttr("from"));
    WSFLOW_ASSIGN_OR_RETURN(int64_t to, node->IntAttr("to"));
    WSFLOW_ASSIGN_OR_RETURN(double bits, node->DoubleAttr("bits"));
    double weight = 1.0;
    if (node->HasAttr("weight")) {
      WSFLOW_ASSIGN_OR_RETURN(weight, node->DoubleAttr("weight"));
    }
    if (from < 0 || to < 0 ||
        static_cast<size_t>(from) >= w.num_operations() ||
        static_cast<size_t>(to) >= w.num_operations()) {
      return Status::ParseError("transition endpoint out of range");
    }
    Result<TransitionId> r =
        w.AddTransition(OperationId(static_cast<uint32_t>(from)),
                        OperationId(static_cast<uint32_t>(to)), bits, weight);
    if (!r.ok()) return r.status().WithContext("loading transition");
  }
  return w;
}

Result<Workflow> WorkflowFromXmlString(const std::string& text) {
  WSFLOW_ASSIGN_OR_RETURN(XmlNode root, ParseXml(text));
  return WorkflowFromXml(root);
}

Status SaveWorkflow(const Workflow& w, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << WorkflowToXmlString(w);
  out.close();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<Workflow> LoadWorkflow(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return WorkflowFromXmlString(buffer.str());
}

}  // namespace wsflow
