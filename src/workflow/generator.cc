#include "src/workflow/generator.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"
#include "src/workflow/validate.h"

namespace wsflow {

Sampler ConstantSampler(double value) {
  return [value](Rng*) { return value; };
}

std::string_view GraphShapeToString(GraphShape shape) {
  switch (shape) {
    case GraphShape::kBushy: return "bushy";
    case GraphShape::kLengthy: return "lengthy";
    case GraphShape::kHybrid: return "hybrid";
  }
  return "unknown";
}

Result<Workflow> GenerateLineWorkflow(const LineWorkflowParams& params,
                                      Rng* rng) {
  if (params.num_operations == 0) {
    return Status::InvalidArgument("line workflow needs >= 1 operation");
  }
  if (!params.cycles || !params.message_bits) {
    return Status::InvalidArgument("line generator needs both samplers");
  }
  std::vector<double> cycles(params.num_operations);
  for (double& c : cycles) c = params.cycles(rng);
  std::vector<double> msgs(params.num_operations - 1);
  for (double& m : msgs) m = params.message_bits(rng);
  return MakeLineWorkflow(params.name, cycles, msgs);
}

RandomGraphParams ParamsForShape(GraphShape shape, size_t num_operations) {
  RandomGraphParams p;
  p.name = std::string(GraphShapeToString(shape));
  p.num_operations = num_operations;
  switch (shape) {
    case GraphShape::kBushy:
      p.decision_fraction = 0.50;  // paper §4.2: 50%-50%
      break;
    case GraphShape::kLengthy:
      p.decision_fraction = 0.16;  // 16%-84%
      break;
    case GraphShape::kHybrid:
      p.decision_fraction = 0.35;  // 35%-65%
      break;
  }
  return p;
}

namespace {

/// An element of a sequence in the generated skeleton: either an anonymous
/// operational node or a reference to a branch block.
struct Item {
  bool is_block = false;
  size_t block_index = 0;
};

struct SkeletonBlock {
  OperationType type = OperationType::kAndSplit;
  std::vector<std::vector<Item>> branches;
};

/// Identifies a sequence in the skeleton: the root (block < 0) or one
/// branch of a block.
struct SeqRef {
  int block = -1;
  size_t branch = 0;
};

/// Random block skeleton: a root sequence plus nested branch blocks. Built
/// in two passes: nest the blocks, then place operational nodes so that
/// every block keeps at most one empty branch (two empty branches would
/// need two identical split->join messages, which the model forbids) and
/// every block subtree contains at least one operational node.
class SkeletonBuilder {
 public:
  SkeletonBuilder(const RandomGraphParams& params, Rng* rng)
      : params_(params), rng_(rng) {}

  /// Attempts to build a skeleton with `num_blocks` blocks and `num_ops`
  /// operational nodes. `force_binary` restricts fan-out to 2, which
  /// minimizes the operations required to keep branches non-empty.
  Status Build(size_t num_blocks, size_t num_ops, bool force_binary) {
    root_.clear();
    blocks_.assign(num_blocks, SkeletonBlock());
    std::vector<SeqRef> seqs{SeqRef{-1, 0}};

    std::vector<double> type_weights{params_.and_weight, params_.or_weight,
                                     params_.xor_weight};
    for (size_t b = 0; b < num_blocks; ++b) {
      size_t fan = force_binary
                       ? 2
                       : static_cast<size_t>(rng_->NextInt(
                             2, static_cast<int64_t>(
                                    std::max<size_t>(2, params_.max_branches))));
      switch (rng_->NextDiscrete(type_weights)) {
        case 0: blocks_[b].type = OperationType::kAndSplit; break;
        case 1: blocks_[b].type = OperationType::kOrSplit; break;
        default: blocks_[b].type = OperationType::kXorSplit; break;
      }
      blocks_[b].branches.resize(fan);
      // Nest under a uniformly random existing sequence. Blocks created
      // later can only nest inside earlier ones, so index order is a
      // topological order of the containment tree.
      SeqRef parent = seqs[rng_->NextBounded(seqs.size())];
      Seq(parent).push_back(Item{true, b});
      for (size_t i = 0; i < fan; ++i) {
        seqs.push_back(SeqRef{static_cast<int>(b), i});
      }
    }

    // Bottom-up constraint pass: each block may keep at most one empty
    // branch. Processing in decreasing index order guarantees nested blocks
    // are already content-bearing.
    size_t ops_left = num_ops;
    for (size_t b = num_blocks; b-- > 0;) {
      SkeletonBlock& blk = blocks_[b];
      size_t empty = 0;
      for (const auto& br : blk.branches) {
        if (br.empty()) ++empty;
      }
      while (empty > 1) {
        if (ops_left == 0) {
          return Status::ResourceExhausted(
              "not enough operational nodes to fill branch bodies");
        }
        for (auto& br : blk.branches) {
          if (br.empty()) {
            br.push_back(Item{});
            --ops_left;
            --empty;
            break;
          }
        }
      }
    }

    // Scatter the remaining operational nodes uniformly over all sequences.
    for (; ops_left > 0; --ops_left) {
      std::vector<Item>& seq = Seq(seqs[rng_->NextBounded(seqs.size())]);
      size_t pos = rng_->NextBounded(seq.size() + 1);
      seq.insert(seq.begin() + static_cast<ptrdiff_t>(pos), Item{});
    }
    return Status::OK();
  }

  /// Emits the skeleton into a Workflow, sampling cycle costs, message
  /// sizes and XOR branch weights.
  Result<Workflow> Emit() {
    Workflow w(params_.name);
    WSFLOW_ASSIGN_OR_RETURN(auto ends, EmitSeq(&w, root_));
    (void)ends;
    WSFLOW_RETURN_IF_ERROR(ValidateAll(w));
    return w;
  }

 private:
  std::vector<Item>& Seq(SeqRef ref) {
    if (ref.block < 0) return root_;
    return blocks_[static_cast<size_t>(ref.block)].branches[ref.branch];
  }

  double SampleCycles() { return params_.cycles(rng_); }
  double SampleDecisionCycles() {
    return params_.decision_cycles ? params_.decision_cycles(rng_)
                                   : params_.cycles(rng_);
  }
  double SampleMessage() { return params_.message_bits(rng_); }

  using Ends = std::pair<OperationId, OperationId>;  // head, tail

  Result<Ends> EmitSeq(Workflow* w, const std::vector<Item>& items) {
    OperationId head, tail;
    for (const Item& item : items) {
      Ends ends;
      if (item.is_block) {
        WSFLOW_ASSIGN_OR_RETURN(ends, EmitBlock(w, blocks_[item.block_index]));
      } else {
        OperationId id =
            w->AddOperation("op" + std::to_string(++op_counter_),
                            OperationType::kOperational, SampleCycles());
        ends = {id, id};
      }
      if (tail.valid()) {
        WSFLOW_ASSIGN_OR_RETURN(
            TransitionId t,
            w->AddTransition(tail, ends.first, SampleMessage()));
        (void)t;
      } else {
        head = ends.first;
      }
      tail = ends.second;
    }
    return Ends{head, tail};
  }

  Result<Ends> EmitBlock(Workflow* w, const SkeletonBlock& blk) {
    size_t n = ++block_counter_;
    OperationId split =
        w->AddOperation("split" + std::to_string(n), blk.type,
                        SampleDecisionCycles());
    OperationId join =
        w->AddOperation("join" + std::to_string(n), ComplementType(blk.type),
                        SampleDecisionCycles());
    for (const auto& branch : blk.branches) {
      // XOR branch weights are uniform in (0.1, 1]; AND/OR ignore them.
      double weight = blk.type == OperationType::kXorSplit
                          ? rng_->NextDouble(0.1, 1.0)
                          : 1.0;
      if (branch.empty()) {
        WSFLOW_ASSIGN_OR_RETURN(
            TransitionId t,
            w->AddTransition(split, join, SampleMessage(), weight));
        (void)t;
      } else {
        WSFLOW_ASSIGN_OR_RETURN(Ends ends, EmitSeq(w, branch));
        WSFLOW_ASSIGN_OR_RETURN(
            TransitionId in,
            w->AddTransition(split, ends.first, SampleMessage(), weight));
        (void)in;
        WSFLOW_ASSIGN_OR_RETURN(
            TransitionId out,
            w->AddTransition(ends.second, join, SampleMessage()));
        (void)out;
      }
    }
    return Ends{split, join};
  }

  const RandomGraphParams& params_;
  Rng* rng_;
  std::vector<Item> root_;
  std::vector<SkeletonBlock> blocks_;
  size_t op_counter_ = 0;
  size_t block_counter_ = 0;
};

}  // namespace

Result<Workflow> GenerateRandomGraphWorkflow(const RandomGraphParams& params,
                                             Rng* rng) {
  if (params.num_operations == 0) {
    return Status::InvalidArgument("graph workflow needs >= 1 operation");
  }
  if (!params.cycles || !params.message_bits) {
    return Status::InvalidArgument("graph generator needs both samplers");
  }
  if (params.decision_fraction < 0 || params.decision_fraction > 1) {
    return Status::InvalidArgument("decision fraction must be in [0, 1]");
  }
  if (params.max_branches < 2) {
    return Status::InvalidArgument("max_branches must be >= 2");
  }
  // Each block contributes a split and a join, so the decision node count is
  // rounded down to even.
  size_t num_blocks = static_cast<size_t>(
      params.decision_fraction * static_cast<double>(params.num_operations) /
      2.0);
  size_t num_ops = params.num_operations - 2 * num_blocks;
  if (num_blocks > 0 && num_ops == 0) {
    return Status::InvalidArgument(
        "decision fraction leaves no operational nodes; every block needs "
        "at least one");
  }

  SkeletonBuilder builder(params, rng);
  Status st = builder.Build(num_blocks, num_ops, /*force_binary=*/false);
  if (st.IsResourceExhausted()) {
    // High fan-out drew too many branches for the available operational
    // nodes; binary blocks need the fewest fillers.
    st = builder.Build(num_blocks, num_ops, /*force_binary=*/true);
  }
  WSFLOW_RETURN_IF_ERROR(st);
  return builder.Emit();
}

}  // namespace wsflow
