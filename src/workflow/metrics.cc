#include "src/workflow/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/common/string_util.h"
#include "src/workflow/probability.h"

namespace wsflow {

namespace {

/// Operations on the longest path through `block` (sequence depth of the
/// deepest branch alternative).
size_t BlockDepth(const Block& block) {
  switch (block.kind) {
    case Block::Kind::kLeaf:
      return 1;
    case Block::Kind::kSequence: {
      size_t depth = 0;
      for (const Block& c : block.children) depth += BlockDepth(c);
      return depth;
    }
    case Block::Kind::kBranch: {
      size_t deepest = 0;
      for (const Block& c : block.children) {
        deepest = std::max(deepest, BlockDepth(c));
      }
      return 2 + deepest;  // split + join
    }
  }
  return 0;
}

size_t BlockNesting(const Block& block) {
  switch (block.kind) {
    case Block::Kind::kLeaf:
      return 0;
    case Block::Kind::kSequence: {
      size_t nesting = 0;
      for (const Block& c : block.children) {
        nesting = std::max(nesting, BlockNesting(c));
      }
      return nesting;
    }
    case Block::Kind::kBranch: {
      size_t inner = 0;
      for (const Block& c : block.children) {
        inner = std::max(inner, BlockNesting(c));
      }
      return 1 + inner;
    }
  }
  return 0;
}

}  // namespace

std::string WorkflowMetrics::ToString() const {
  std::ostringstream os;
  os << "ops=" << num_operations << " (decision=" << num_decision_nodes
     << ", " << FormatDouble(decision_fraction * 100, 3) << "%)"
     << " msgs=" << num_transitions << " depth=" << depth
     << " fanout=" << max_fan_out << " nesting=" << max_nesting
     << " E[ops/run]=" << FormatDouble(expected_executed_operations, 4)
     << " cycles=" << FormatDouble(total_cycles, 4)
     << " E[cycles/run]=" << FormatDouble(expected_cycles, 4);
  return os.str();
}

Result<WorkflowMetrics> ComputeWorkflowMetrics(const Workflow& w) {
  WSFLOW_ASSIGN_OR_RETURN(Block root, DecomposeBlocks(w));
  ExecutionProfile profile = ComputeExecutionProfile(w, root);

  WorkflowMetrics m;
  m.num_operations = w.num_operations();
  m.num_transitions = w.num_transitions();
  m.num_decision_nodes = w.NumDecisionNodes();
  m.decision_fraction =
      m.num_operations == 0
          ? 0.0
          : static_cast<double>(m.num_decision_nodes) /
                static_cast<double>(m.num_operations);
  m.depth = BlockDepth(root);
  m.max_nesting = BlockNesting(root);
  for (const Operation& op : w.operations()) {
    if (op.is_split()) {
      m.max_fan_out = std::max(m.max_fan_out, w.out_degree(op.id()));
    }
    m.expected_executed_operations += profile.OperationProb(op.id());
    m.total_cycles += op.cycles();
    m.expected_cycles += profile.OperationProb(op.id()) * op.cycles();
  }
  for (const Transition& t : w.transitions()) {
    m.total_message_bits += t.message_bits;
    m.expected_message_bits +=
        profile.TransitionProb(t.id) * t.message_bits;
  }
  return m;
}

}  // namespace wsflow
