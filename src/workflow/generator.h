// wsflow: synthetic workflow generators.
//
// The experiments of the paper (§4) run on synthetic workflows: simple lines
// of M operations, and random well-formed graphs classified by the ratio of
// decision to operational nodes — *bushy* graphs are 50%/50% decision/
// operational (short, high fan-out), *lengthy* graphs 16%/84% (long paths),
// and *hybrid* graphs 35%/65% (paper §4.2). Generators draw operation cycle
// costs and message sizes from caller-supplied samplers so the experiment
// harness can plug in the Table 6 distributions.

#ifndef WSFLOW_WORKFLOW_GENERATOR_H_
#define WSFLOW_WORKFLOW_GENERATOR_H_

#include <functional>
#include <string>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/workflow/workflow.h"

namespace wsflow {

/// Draws one value from a distribution; receives the experiment RNG.
using Sampler = std::function<double(Rng*)>;

/// Returns a sampler producing the constant `value`.
Sampler ConstantSampler(double value);

/// Parameters for line workflow generation.
struct LineWorkflowParams {
  std::string name = "line";
  size_t num_operations = 19;
  Sampler cycles;        ///< C(op) per operation.
  Sampler message_bits;  ///< MsgSize per consecutive pair.
};

/// Generates the line workflow O_1 -> ... -> O_M.
Result<Workflow> GenerateLineWorkflow(const LineWorkflowParams& params,
                                      Rng* rng);

/// The three random-graph families of §4.2.
enum class GraphShape { kBushy, kLengthy, kHybrid };

std::string_view GraphShapeToString(GraphShape shape);

/// Parameters for random well-formed graph generation.
struct RandomGraphParams {
  std::string name = "graph";
  /// Total operation count, decision nodes included. The generator matches
  /// this exactly when feasible (see GenerateRandomGraphWorkflow).
  size_t num_operations = 19;
  /// Fraction of operations that are decision nodes (each branch block
  /// contributes two: split + join). Rounded down to an even node count.
  double decision_fraction = 0.35;
  /// Branch fan-out of each block is uniform in [2, max_branches].
  size_t max_branches = 3;
  Sampler cycles;          ///< C(op) for operational nodes.
  Sampler decision_cycles; ///< C(op) for decision nodes; falls back to cycles.
  Sampler message_bits;    ///< MsgSize per transition.
  /// Relative frequency of AND / OR / XOR blocks.
  double and_weight = 1.0;
  double or_weight = 1.0;
  double xor_weight = 1.0;
};

/// Returns params preset to the paper's decision/operational ratio for the
/// given shape: bushy 0.5, lengthy 0.16, hybrid 0.35. Samplers still need
/// to be assigned.
RandomGraphParams ParamsForShape(GraphShape shape, size_t num_operations);

/// Generates a random well-formed graph workflow. The number of decision
/// nodes is 2*floor(decision_fraction*num_operations/2); blocks are nested
/// uniformly at random and XOR branch weights are drawn uniformly from
/// (0, 1]. Fails when num_operations is 0 or the decision fraction is
/// infeasible (e.g. decision nodes but not enough total operations).
Result<Workflow> GenerateRandomGraphWorkflow(const RandomGraphParams& params,
                                             Rng* rng);

}  // namespace wsflow

#endif  // WSFLOW_WORKFLOW_GENERATOR_H_
