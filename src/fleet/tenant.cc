#include "src/fleet/tenant.h"

#include <algorithm>
#include <cmath>

namespace wsflow::fleet {

double DriftStream::Next(double current) {
  // One draw per epoch even at sigma 0 keeps trajectories comparable
  // across drift settings (the stream position depends only on the epoch).
  const double u = rng_.NextDouble(-1.0, 1.0);
  double next = current * std::exp(options_.sigma * u);
  return std::clamp(next, options_.min_weight, options_.max_weight);
}

}  // namespace wsflow::fleet
