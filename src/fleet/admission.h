// wsflow: per-tenant admission control and quotas for the shared farm.
//
// Admission reasons about *projected demand*, not placements: a tenant at
// weight w needs w * Sum p(op) * C(op) cycles per second no matter where
// its operations land, and the farm supplies Sum P(s) cycles per second.
// That makes the admission decision O(1), mapping-free and safe to take
// before any deployment work is spent:
//
//   * reject — the tenant alone would exceed its quota share of the farm
//     (max_tenant_share); growing the farm is the only fix, so the tenant
//     is never re-considered;
//   * queue  — the tenant fits its quota but the farm's committed demand
//     would exceed the capacity budget (max_utilization); queued tenants
//     are retried in submission order whenever drift frees capacity;
//   * admit  — demand is committed against the budget.
//
// The same quota also caps drift: a deployed tenant whose traffic grows
// past its share is clamped to it (counted, never violated), so a noisy
// neighbour cannot squeeze the farm no matter what its drift stream does.

#ifndef WSFLOW_FLEET_ADMISSION_H_
#define WSFLOW_FLEET_ADMISSION_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/deploy/graph_view.h"
#include "src/network/topology.h"

namespace wsflow::fleet {

/// Farm-level capacity policy, both knobs fractions of total farm Hz.
struct FarmBudget {
  /// Committed demand may not exceed this fraction of farm capacity.
  double max_utilization = 0.9;
  /// No single tenant's demand may exceed this fraction of farm capacity.
  double max_tenant_share = 0.25;
};

enum class AdmissionDecision : uint8_t { kAdmitted, kQueued, kRejected };

/// Cycles per second tenant demand at `weight` (mapping-independent):
/// weight * Sum over operations of p(op) * C(op).
double TenantDemandHz(const WorkflowView& view, double weight);

/// Tracks committed demand against the farm capacity budget.
class AdmissionController {
 public:
  /// `capacity_hz` is the farm's total power (Network::TotalPowerHz).
  AdmissionController(double capacity_hz, const FarmBudget& budget);

  /// Classifies `demand_hz` against the quota and the remaining budget.
  /// Does not commit — call Commit on kAdmitted.
  AdmissionDecision Decide(double demand_hz) const;

  /// Books admitted demand against the budget.
  void Commit(double demand_hz);

  /// Returns demand to the pool (a shrunk or evicted tenant). Clamped at 0.
  void Release(double demand_hz);

  /// Largest weight multiplier the per-tenant quota allows for a tenant of
  /// `unit_demand_hz` (its demand at weight 1). Infinity when the unit
  /// demand is 0.
  double MaxWeightForQuota(double unit_demand_hz) const;

  double capacity_hz() const { return capacity_hz_; }
  double committed_hz() const { return committed_hz_; }
  /// committed / capacity.
  double utilization() const;
  const FarmBudget& budget() const { return budget_; }

 private:
  double capacity_hz_;
  FarmBudget budget_;
  double committed_hz_ = 0;
};

}  // namespace wsflow::fleet

#endif  // WSFLOW_FLEET_ADMISSION_H_
