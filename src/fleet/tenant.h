// wsflow: tenant registry types and seeded traffic drift.
//
// A tenant is one workflow instance admitted onto the shared farm with a
// QPS weight that scales its load contribution (src/cost/shared_load.h).
// Thousands of tenants typically instantiate a few workflow *archetypes*
// (the same service template sold to many customers), so the controller
// shares one warmed CostModel per archetype and keeps per-tenant state to
// a mapping, a weight and a drift stream.
//
// DriftStream models traffic drift as a seeded multiplicative random walk:
// each epoch multiplies the weight by exp(sigma * u), u uniform in [-1, 1),
// clamped into [min_weight, max_weight]. The walk is deterministic in its
// seed — the same tenant replays the same traffic trajectory on every run,
// platform and thread count, which is what makes fleet runs byte-identical.

#ifndef WSFLOW_FLEET_TENANT_H_
#define WSFLOW_FLEET_TENANT_H_

#include <cstddef>
#include <cstdint>

#include "src/common/random.h"
#include "src/cost/shared_load.h"
#include "src/deploy/mapping.h"

namespace wsflow::fleet {

struct DriftOptions {
  /// Step size of the multiplicative walk; 0 freezes every weight.
  double sigma = 0.2;
  /// Weight clamp range (quota clamping may restrict further).
  double min_weight = 0.05;
  double max_weight = 20.0;
};

/// Seeded, replayable per-tenant traffic drift.
class DriftStream {
 public:
  DriftStream(uint64_t seed, const DriftOptions& options)
      : rng_(seed), options_(options) {}

  /// The next epoch's weight given the current one.
  double Next(double current);

 private:
  Rng rng_;
  DriftOptions options_;
};

/// What a tenant asks for at admission time.
struct TenantSpec {
  /// Index into the controller's archetype registry.
  size_t archetype = 0;
  /// Initial QPS weight.
  double weight = 1.0;
  /// Seed of this tenant's drift stream.
  uint64_t drift_seed = 0;
};

/// Lifecycle of a submitted tenant.
enum class TenantStatus : uint8_t {
  kQueued,    ///< Waiting for farm capacity.
  kDeployed,  ///< Admitted and placed.
  kRejected,  ///< Demand breaches the per-tenant quota; never admitted.
};

/// Controller-side state of one tenant.
struct TenantState {
  TenantSpec spec;
  TenantStatus status = TenantStatus::kQueued;
  /// Current QPS weight (drifted, quota-clamped).
  double weight = 1.0;
  /// Current mapping on the farm (total once deployed).
  Mapping mapping;
  /// Sparse per-server load contribution of `mapping` at weight 1.
  TenantLoadVector own_load;
  /// T_execute of `mapping` (request latency; weight-independent).
  double execution_time = 0;
  /// Shared cost recorded when the mapping was last (re)deployed — the
  /// baseline the drift watcher compares against.
  double deployed_cost = 0;
  /// Shared cost under the current epoch's weights.
  double current_cost = 0;
  /// Times this tenant was migrated.
  size_t migrations = 0;
  /// Epochs this tenant served stale answers while a migration landed.
  size_t degraded_epochs = 0;
};

}  // namespace wsflow::fleet

#endif  // WSFLOW_FLEET_TENANT_H_
