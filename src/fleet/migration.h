// wsflow: drift-driven tenant re-deployment on the shared farm.
//
// Traffic drift is a softer fault: nothing is orphaned, the current
// mapping still routes, it is merely no longer near-optimal under the new
// weights. MigrateTenant therefore runs the RepairMapping recipe minus the
// seeding phase — the drifted mapping *is* the warm seed — as an
// eval-budgeted best-improvement descent over the batched ScoreMoves /
// ScoreSwaps fans of an IncrementalEvaluator bound with the shared-load
// tuning (base_loads = the rest of the farm, load_scale = the tenant's QPS
// weight). The budget makes migration latency predictable; the warm start
// is what makes continuous redeployment affordable at fleet scale.
//
// RedeployTenantFromScratch is the quality yardstick (and the cold path
// for first-time placement): a greedy shared-load seed polished with the
// same machinery, unbudgeted unless told otherwise. The fleet test suite
// enforces the RepairMapping bar against it: warm-start migration reaches
// <= 110% of the from-scratch cost at <= 20% of its evaluations.
//
// Everything is deterministic — no randomness, strict-improvement
// acceptance, first-best tie-breaks — so a migration replays bit-for-bit.

#ifndef WSFLOW_FLEET_MIGRATION_H_
#define WSFLOW_FLEET_MIGRATION_H_

#include <cstddef>
#include <span>

#include "src/common/result.h"
#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"
#include "src/cost/shared_load.h"
#include "src/deploy/mapping.h"

namespace wsflow::fleet {

struct MigrationOptions {
  /// Delta-evaluation budget of the polish (0 = unlimited).
  size_t eval_budget = 256;
  /// Also sweep ScoreSwaps fans in each polish pass.
  bool use_swaps = false;
  /// Objective weights of the shared evaluation.
  CostOptions cost_options;
  /// Evaluator knobs; base_loads and load_scale are overwritten with the
  /// migration's farm context.
  EvalTuning tuning;
  /// Relative strict-improvement margin (the ulp guard local search uses).
  double min_improvement = 1e-12;
};

struct MigrationResult {
  Mapping mapping;
  /// Shared-load breakdown of `mapping` (execution time + farm penalty).
  CostBreakdown cost;
  /// Delta evaluations the polish consumed (incumbent included).
  size_t polish_evaluations = 0;
  /// True when polish stopped on the budget instead of a local optimum.
  bool budget_exhausted = false;
  /// True when the polished mapping differs from the seed.
  bool moved = false;
  /// The polish evaluator's counters.
  EvalCounters counters;
};

/// Greedy shared-load seed: operations in descending weighted cycle order,
/// each placed on the server where the combined load (base + already
/// placed operations) ends up smallest. Deterministic; O(M log M + M * N).
Mapping SeedSharedMapping(const CostModel& model, double weight,
                          std::span<const double> base_loads);

/// Warm-start re-deployment of one tenant: polishes `current` (which must
/// be total) against the farm context. `base_loads` must be empty or one
/// finite non-negative entry per server; `weight` finite and > 0.
Result<MigrationResult> MigrateTenant(const CostModel& model,
                                      const Mapping& current, double weight,
                                      std::span<const double> base_loads,
                                      const MigrationOptions& options = {});

/// The quality yardstick and cold-placement path: greedy seed, then the
/// same polish (unlimited unless options.eval_budget says otherwise).
Result<MigrationResult> RedeployTenantFromScratch(
    const CostModel& model, double weight,
    std::span<const double> base_loads, const MigrationOptions& options = {});

}  // namespace wsflow::fleet

#endif  // WSFLOW_FLEET_MIGRATION_H_
