#include "src/fleet/admission.h"

#include <limits>

#include "src/common/logging.h"

namespace wsflow::fleet {

double TenantDemandHz(const WorkflowView& view, double weight) {
  return weight * view.TotalCycles();
}

AdmissionController::AdmissionController(double capacity_hz,
                                         const FarmBudget& budget)
    : capacity_hz_(capacity_hz), budget_(budget) {
  WSFLOW_CHECK(capacity_hz_ > 0) << "farm has no capacity";
}

AdmissionDecision AdmissionController::Decide(double demand_hz) const {
  if (demand_hz > budget_.max_tenant_share * capacity_hz_) {
    return AdmissionDecision::kRejected;
  }
  if (committed_hz_ + demand_hz > budget_.max_utilization * capacity_hz_) {
    return AdmissionDecision::kQueued;
  }
  return AdmissionDecision::kAdmitted;
}

void AdmissionController::Commit(double demand_hz) {
  committed_hz_ += demand_hz;
}

void AdmissionController::Release(double demand_hz) {
  committed_hz_ -= demand_hz;
  if (committed_hz_ < 0) committed_hz_ = 0;
}

double AdmissionController::MaxWeightForQuota(double unit_demand_hz) const {
  if (unit_demand_hz <= 0) return std::numeric_limits<double>::infinity();
  return budget_.max_tenant_share * capacity_hz_ / unit_demand_hz;
}

double AdmissionController::utilization() const {
  return committed_hz_ / capacity_hz_;
}

}  // namespace wsflow::fleet
