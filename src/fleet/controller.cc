#include "src/fleet/controller.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/deploy/graph_view.h"

namespace wsflow::fleet {

namespace {

size_t ResolveThreads(size_t requested, size_t tasks) {
  size_t threads = requested;
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (threads > tasks) threads = tasks;
  return threads == 0 ? 1 : threads;
}

/// Runs fn(0..tasks-1) over a worker pool pulling indices from a shared
/// counter (src/deploy/parallel.cc's pattern). fn writes only per-index
/// state, so the interleaving cannot affect the outcome.
void RunOnThreads(size_t threads, size_t tasks,
                  const std::function<void(size_t)>& fn) {
  if (tasks == 0) return;
  if (threads <= 1 || tasks == 1) {
    for (size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&next, tasks, &fn] {
    for (size_t i = next.fetch_add(1); i < tasks; i = next.fetch_add(1)) {
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

}  // namespace

FleetController::FleetController(std::vector<const CostModel*> archetypes,
                                 const FleetOptions& options,
                                 serve::ServeMetrics* metrics)
    : archetypes_(std::move(archetypes)),
      options_(options),
      metrics_(metrics),
      admission_(archetypes_.empty()
                     ? 1.0
                     : archetypes_.front()->network().TotalPowerHz(),
                 options.budget),
      ledger_(archetypes_.empty()
                  ? 0
                  : archetypes_.front()->network().num_servers()) {
  WSFLOW_CHECK(!archetypes_.empty()) << "fleet needs at least one archetype";
  const Network* net = &archetypes_.front()->network();
  unit_demand_hz_.reserve(archetypes_.size());
  for (const CostModel* model : archetypes_) {
    WSFLOW_CHECK(model != nullptr) << "null archetype model";
    WSFLOW_CHECK(&model->network() == net)
        << "archetypes must share one farm network";
    ExecutionProfile profile = model->ProfileSnapshot();
    WorkflowView view(model->workflow(), &profile);
    unit_demand_hz_.push_back(TenantDemandHz(view, 1.0));
  }
}

Status FleetController::DeployTenant(size_t id, size_t* evaluations) {
  TenantState& t = tenants_[id];
  MigrationOptions opt;
  opt.eval_budget = options_.deploy_eval_budget;
  opt.use_swaps = options_.use_swaps;
  opt.cost_options = options_.cost_options;
  WSFLOW_ASSIGN_OR_RETURN(
      MigrationResult placed,
      RedeployTenantFromScratch(ModelOf(t), t.weight, ledger_.loads(), opt));
  t.mapping = std::move(placed.mapping);
  t.own_load = ComputeTenantLoad(ModelOf(t), t.mapping);
  t.execution_time = placed.cost.execution_time;
  t.deployed_cost = placed.cost.combined;
  t.current_cost = placed.cost.combined;
  t.status = TenantStatus::kDeployed;
  ledger_.Add(t.own_load, t.weight);
  *evaluations += placed.polish_evaluations;
  return Status::OK();
}

Result<size_t> FleetController::Submit(const TenantSpec& spec) {
  if (spec.archetype >= archetypes_.size()) {
    return Status::InvalidArgument("unknown archetype");
  }
  if (!std::isfinite(spec.weight) || spec.weight <= 0) {
    return Status::InvalidArgument("tenant weight must be finite and > 0");
  }
  const size_t id = tenants_.size();
  TenantState t;
  t.spec = spec;
  t.weight = spec.weight;
  tenants_.push_back(std::move(t));
  drift_.emplace_back(spec.drift_seed, options_.drift);

  const double demand = spec.weight * unit_demand_hz_[spec.archetype];
  switch (admission_.Decide(demand)) {
    case AdmissionDecision::kRejected:
      tenants_[id].status = TenantStatus::kRejected;
      ++total_rejections_;
      if (metrics_ != nullptr) metrics_->RecordTenantRejected();
      break;
    case AdmissionDecision::kQueued:
      tenants_[id].status = TenantStatus::kQueued;
      queue_.push_back(id);
      if (metrics_ != nullptr) metrics_->RecordTenantQueued();
      break;
    case AdmissionDecision::kAdmitted: {
      admission_.Commit(demand);
      size_t evaluations = 0;
      Status deployed = DeployTenant(id, &evaluations);
      total_evaluations_ += evaluations;
      if (!deployed.ok()) {
        admission_.Release(demand);
        tenants_.pop_back();
        drift_.pop_back();
        return deployed;
      }
      if (metrics_ != nullptr) metrics_->RecordTenantAdmitted();
      break;
    }
  }
  return id;
}

void FleetController::ResumLedger() {
  ledger_.Clear();
  for (const TenantState& t : tenants_) {
    if (t.status == TenantStatus::kDeployed) {
      ledger_.Add(t.own_load, t.weight);
    }
  }
}

Result<EpochReport> FleetController::RunEpoch() {
  EpochReport report;
  report.epoch = ++epoch_;

  // 1. Drift, in tenant order. Growth is clamped twice: to the per-tenant
  // quota (a noisy neighbour never exceeds its share) and to the farm's
  // remaining capacity budget (committed demand never exceeds the budget).
  // Shrinking always goes through — freed capacity feeds the queue below.
  for (size_t id = 0; id < tenants_.size(); ++id) {
    TenantState& t = tenants_[id];
    if (t.status != TenantStatus::kDeployed) continue;
    const double unit = UnitDemand(t);
    const double old_weight = t.weight;
    double next = drift_[id].Next(old_weight);
    bool clamped = false;
    const double quota_cap = admission_.MaxWeightForQuota(unit);
    if (next > quota_cap) {
      next = quota_cap;
      clamped = true;
    }
    if (next > old_weight && unit > 0) {
      const double headroom = admission_.budget().max_utilization *
                                  admission_.capacity_hz() -
                              admission_.committed_hz();
      const double budget_cap = old_weight + std::max(0.0, headroom) / unit;
      if (next > budget_cap) {
        next = std::max(old_weight, budget_cap);
        clamped = true;
      }
    }
    if (clamped) {
      ++report.weight_clamps;
      ++total_clamps_;
    }
    admission_.Release(old_weight * unit);
    admission_.Commit(next * unit);
    t.weight = next;
  }

  // 2. Promote queued tenants in submission order while capacity lasts.
  std::vector<size_t> still_queued;
  still_queued.reserve(queue_.size());
  for (size_t id : queue_) {
    TenantState& t = tenants_[id];
    const double demand = t.weight * UnitDemand(t);
    if (admission_.Decide(demand) == AdmissionDecision::kAdmitted) {
      admission_.Commit(demand);
      size_t evaluations = 0;
      Status deployed = DeployTenant(id, &evaluations);
      total_evaluations_ += evaluations;
      report.polish_evaluations += evaluations;
      if (!deployed.ok()) return deployed;
      ++report.admitted;
      if (metrics_ != nullptr) metrics_->RecordTenantAdmitted();
    } else {
      still_queued.push_back(id);
    }
  }
  queue_ = std::move(still_queued);

  // 3. Fresh farm ledger and per-tenant shared costs under the new
  // weights. The fairness penalty is a farm-global statistic; each
  // tenant's cost pairs it with that tenant's own execution time.
  ResumLedger();
  double penalty = ledger_.FarmPenalty();
  auto shared_cost = [&](const TenantState& t) {
    return options_.cost_options.execution_weight * t.execution_time +
           options_.cost_options.fairness_weight * penalty;
  };
  for (TenantState& t : tenants_) {
    if (t.status == TenantStatus::kDeployed) t.current_cost = shared_cost(t);
  }

  // 4. Regression watch: collect tenants past the drift threshold, worst
  // relative regression first (ties to the lower id), churn-bounded.
  std::vector<size_t> wave;
  for (size_t id = 0; id < tenants_.size(); ++id) {
    const TenantState& t = tenants_[id];
    if (t.status != TenantStatus::kDeployed) continue;
    if (t.current_cost >
        (1.0 + options_.drift_threshold) * t.deployed_cost) {
      wave.push_back(id);
    }
  }
  auto regression = [&](size_t id) {
    const TenantState& t = tenants_[id];
    return t.deployed_cost > 0 ? t.current_cost / t.deployed_cost
                               : std::numeric_limits<double>::infinity();
  };
  std::stable_sort(wave.begin(), wave.end(), [&](size_t a, size_t b) {
    return regression(a) > regression(b);
  });
  if (options_.max_migrations_per_epoch > 0 &&
      wave.size() > options_.max_migrations_per_epoch) {
    wave.resize(options_.max_migrations_per_epoch);
  }

  // 5. Migration wave. Every migration reads frozen epoch-start state (its
  // own mapping plus the ledger minus its own contribution) and writes its
  // own slot; the pool interleaving cannot leak into the results.
  struct WaveSlot {
    size_t id = 0;
    std::vector<double> base;
    Result<MigrationResult> result = Status::Internal("migration not run");
  };
  std::vector<WaveSlot> slots(wave.size());
  for (size_t i = 0; i < wave.size(); ++i) {
    slots[i].id = wave[i];
    const TenantState& t = tenants_[wave[i]];
    slots[i].base = ledger_.Excluding(t.own_load, t.weight);
  }
  MigrationOptions mopt;
  mopt.eval_budget = options_.migration_eval_budget;
  mopt.use_swaps = options_.use_swaps;
  mopt.cost_options = options_.cost_options;
  RunOnThreads(ResolveThreads(options_.threads, slots.size()), slots.size(),
               [&](size_t i) {
                 const TenantState& t = tenants_[slots[i].id];
                 slots[i].result =
                     MigrateTenant(ModelOf(t), t.mapping, t.weight,
                                   slots[i].base, mopt);
               });

  // Apply in wave order (fixed above), accepting only strict improvements
  // over the cost the watcher saw. A migrated tenant serves its stale
  // mapping while the move lands — one degraded epoch.
  for (WaveSlot& slot : slots) {
    WSFLOW_RETURN_IF_ERROR(slot.result.status());
    MigrationResult& moved = *slot.result;
    TenantState& t = tenants_[slot.id];
    ++report.migration_attempts;
    report.polish_evaluations += moved.polish_evaluations;
    total_evaluations_ += moved.polish_evaluations;
    if (moved.moved && moved.cost.combined < t.current_cost) {
      t.mapping = std::move(moved.mapping);
      t.own_load = ComputeTenantLoad(ModelOf(t), t.mapping);
      t.execution_time = moved.cost.execution_time;
      ++t.migrations;
      ++t.degraded_epochs;
      ++report.migrations;
      ++total_migrations_;
      if (metrics_ != nullptr) {
        metrics_->RecordMigration();
        metrics_->RecordDegraded();
      }
    } else if (metrics_ != nullptr) {
      metrics_->RecordMigrationStall();
    }
  }

  // 6. Re-sum with the migrated mappings and re-anchor every attempted
  // tenant's baseline, improved or not — a tenant already at its budgeted
  // local optimum must not re-trigger the watcher every epoch.
  if (!slots.empty()) {
    ResumLedger();
    penalty = ledger_.FarmPenalty();
    for (TenantState& t : tenants_) {
      if (t.status == TenantStatus::kDeployed) t.current_cost = shared_cost(t);
    }
    for (const WaveSlot& slot : slots) {
      tenants_[slot.id].deployed_cost = tenants_[slot.id].current_cost;
    }
  }

  // 7. Report.
  std::vector<double> costs;
  for (const TenantState& t : tenants_) {
    switch (t.status) {
      case TenantStatus::kDeployed:
        ++report.deployed;
        costs.push_back(t.current_cost);
        break;
      case TenantStatus::kQueued:
        ++report.queued;
        break;
      case TenantStatus::kRejected:
        ++report.rejected;
        break;
    }
  }
  std::vector<double> q = Quantiles(std::move(costs), {0.5, 0.95, 0.99});
  report.p50 = q[0];
  report.p95 = q[1];
  report.p99 = q[2];
  report.farm_penalty = penalty;
  report.utilization = admission_.utilization();
  return report;
}

}  // namespace wsflow::fleet
