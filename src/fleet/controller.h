// wsflow: the multi-tenant fleet controller.
//
// One controller owns a shared farm: tenants are admitted against the
// capacity budget (src/fleet/admission.h), placed with the shared-load
// migration engine (src/fleet/migration.h), and watched as their seeded
// traffic drift (src/fleet/tenant.h) erodes the fairness their mappings
// were optimized for. The epoch loop is the serving story of the paper's
// static deployment problem:
//
//   drift -> admit from the queue -> re-sum the farm ledger -> watch
//   per-tenant cost regression -> migrate the worst offenders -> re-anchor
//
// A tenant migrates when its shared cost regresses past drift_threshold
// relative to the cost recorded at its last (re)deployment. Migrations are
// budgeted warm-start polishes and at most max_migrations_per_epoch run
// per epoch, so redeployment churn is bounded no matter how hard traffic
// moves. Tenants that migrate serve stale answers for that epoch; the
// degraded epochs are counted per tenant and in the serve metrics.
//
// Determinism contract (mirrors src/deploy/parallel.h): every epoch is a
// pure function of (archetypes, options, submission order, drift seeds).
// The migration wave runs on a worker pool, but each migration reads only
// frozen epoch-start state and writes its own slot; results are applied in
// a fixed order, and the ledger is re-summed from scratch in tenant order
// — byte-identical reports on 1 thread or 64.

#ifndef WSFLOW_FLEET_CONTROLLER_H_
#define WSFLOW_FLEET_CONTROLLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/cost/cost_model.h"
#include "src/cost/shared_load.h"
#include "src/fleet/admission.h"
#include "src/fleet/migration.h"
#include "src/fleet/tenant.h"
#include "src/serve/metrics.h"

namespace wsflow::fleet {

struct FleetOptions {
  /// Farm capacity policy.
  FarmBudget budget;
  /// Traffic drift applied to every deployed tenant each epoch.
  DriftOptions drift;
  /// Objective weights of the shared per-tenant cost.
  CostOptions cost_options;
  /// Migrate when current cost exceeds (1 + drift_threshold) times the
  /// cost recorded at the tenant's last (re)deployment.
  double drift_threshold = 0.10;
  /// Concurrent-churn bound: migrations attempted per epoch (0 = all
  /// regressed tenants).
  size_t max_migrations_per_epoch = 8;
  /// Eval budget of each warm migration polish (0 = unlimited).
  size_t migration_eval_budget = 256;
  /// Eval budget of each first-time deployment (0 = unlimited).
  size_t deploy_eval_budget = 1024;
  /// Also sweep swap fans in the polishes.
  bool use_swaps = false;
  /// Worker threads of the migration wave; 0 = hardware concurrency.
  /// NOT part of the result — any thread count yields identical epochs.
  size_t threads = 1;
};

/// What one epoch did, in deterministic counters and cost percentiles.
struct EpochReport {
  size_t epoch = 0;             ///< 1-based epoch number.
  size_t deployed = 0;          ///< Tenants serving at epoch end.
  size_t queued = 0;            ///< Tenants still waiting for capacity.
  size_t rejected = 0;          ///< Tenants rejected so far (lifetime).
  size_t admitted = 0;          ///< Queue promotions this epoch.
  size_t migration_attempts = 0;///< Polishes run this epoch.
  size_t migrations = 0;        ///< Polishes that landed a better mapping.
  size_t weight_clamps = 0;     ///< Drift steps clamped by quota/budget.
  size_t polish_evaluations = 0;///< Delta evals spent this epoch.
  double p50 = 0;               ///< Per-tenant shared cost percentiles
  double p95 = 0;               ///< over the deployed population, at
  double p99 = 0;               ///< epoch end.
  double farm_penalty = 0;      ///< Fairness penalty of the farm ledger.
  double utilization = 0;       ///< Committed / capacity.
};

class FleetController {
 public:
  /// `archetypes` are warmed cost models over the SAME network, one per
  /// workflow template tenants instantiate; they must outlive the
  /// controller. `metrics` may be null; when set, admission and migration
  /// events are also recorded there.
  FleetController(std::vector<const CostModel*> archetypes,
                  const FleetOptions& options,
                  serve::ServeMetrics* metrics = nullptr);

  /// Submits a tenant: decides admission, deploys immediately when the
  /// farm has room, queues or rejects otherwise. Returns the tenant id.
  Result<size_t> Submit(const TenantSpec& spec);

  /// One epoch of the serving loop: drift, queue promotion, regression
  /// watch, bounded migration wave, re-anchor, report.
  Result<EpochReport> RunEpoch();

  size_t num_tenants() const { return tenants_.size(); }
  const TenantState& tenant(size_t id) const { return tenants_[id]; }
  const AdmissionController& admission() const { return admission_; }
  const FarmLoadLedger& ledger() const { return ledger_; }
  const FleetOptions& options() const { return options_; }

  size_t epochs_run() const { return epoch_; }
  /// Lifetime totals across every epoch (and initial deployments).
  size_t total_migrations() const { return total_migrations_; }
  size_t total_rejections() const { return total_rejections_; }
  size_t total_clamps() const { return total_clamps_; }
  size_t total_evaluations() const { return total_evaluations_; }

 private:
  const CostModel& ModelOf(const TenantState& t) const {
    return *archetypes_[t.spec.archetype];
  }
  double UnitDemand(const TenantState& t) const {
    return unit_demand_hz_[t.spec.archetype];
  }

  /// From-scratch placement against the current ledger; commits the
  /// tenant's load and marks it deployed.
  Status DeployTenant(size_t id, size_t* evaluations);

  /// Clear + Add over deployed tenants in id order.
  void ResumLedger();

  std::vector<const CostModel*> archetypes_;
  std::vector<double> unit_demand_hz_;  ///< Demand at weight 1, per archetype.
  FleetOptions options_;
  serve::ServeMetrics* metrics_;  // may be null

  AdmissionController admission_;
  FarmLoadLedger ledger_;
  std::vector<TenantState> tenants_;
  std::vector<DriftStream> drift_;   ///< Parallel to tenants_.
  std::vector<size_t> queue_;        ///< Queued tenant ids, submission order.

  size_t epoch_ = 0;
  size_t total_migrations_ = 0;
  size_t total_rejections_ = 0;
  size_t total_clamps_ = 0;
  size_t total_evaluations_ = 0;
};

}  // namespace wsflow::fleet

#endif  // WSFLOW_FLEET_CONTROLLER_H_
