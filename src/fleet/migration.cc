#include "src/fleet/migration.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/deploy/graph_view.h"

namespace wsflow::fleet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Strict improvement with the relative ulp margin (repair.cc's guard).
bool Accepts(double cost, double incumbent, double margin) {
  if (!std::isfinite(incumbent)) return cost < incumbent;
  return cost < incumbent - margin * (1.0 + std::fabs(incumbent));
}

Status CheckInputs(const CostModel& model, double weight,
                   std::span<const double> base_loads) {
  if (!std::isfinite(weight) || weight <= 0) {
    return Status::InvalidArgument("tenant weight must be finite and > 0");
  }
  if (!base_loads.empty() &&
      base_loads.size() != model.network().num_servers()) {
    return Status::InvalidArgument(
        "base_loads size does not match the network");
  }
  for (double l : base_loads) {
    if (!std::isfinite(l) || l < 0) {
      return Status::InvalidArgument("base loads must be finite and >= 0");
    }
  }
  return Status::OK();
}

/// Best-improvement descent on the shared-load evaluator: the repair
/// polish minus the mask, plus the farm context in the tuning.
Status Polish(const CostModel& model, double weight,
              std::span<const double> base_loads,
              const MigrationOptions& options, Mapping* mapping,
              MigrationResult* result) {
  EvalTuning tuning = options.tuning;
  tuning.base_loads.assign(base_loads.begin(), base_loads.end());
  tuning.load_scale = weight;
  WSFLOW_ASSIGN_OR_RETURN(
      IncrementalEvaluator eval,
      IncrementalEvaluator::Bind(model, *mapping, options.cost_options,
                                 tuning));

  const size_t M = model.workflow().num_operations();
  const size_t N = model.network().num_servers();
  std::vector<ServerId> candidates;
  candidates.reserve(N);
  for (uint32_t s = 0; s < N; ++s) {
    if (tuning.mask.alive(ServerId(s))) candidates.push_back(ServerId(s));
  }

  const size_t budget = options.eval_budget;
  auto used = [&eval] { return eval.counters().delta_evaluations; };
  auto budget_allows = [&](size_t fan) {
    return budget == 0 || used() + fan <= budget;
  };

  double incumbent = kInf;
  if (budget_allows(1)) {
    Result<double> start = eval.Combined();
    if (start.ok()) incumbent = *start;
  }

  std::vector<double> costs;
  std::vector<OperationId> partners;
  bool improved = true;
  while (improved && !result->budget_exhausted) {
    improved = false;
    double best_cost = incumbent;
    bool best_is_swap = false;
    OperationId best_a;
    OperationId best_b;
    ServerId best_server;

    for (uint32_t op = 0; op < M && !result->budget_exhausted; ++op) {
      if (!budget_allows(candidates.size())) {
        result->budget_exhausted = true;
        break;
      }
      costs.resize(candidates.size());
      WSFLOW_RETURN_IF_ERROR(
          eval.ScoreMoves(OperationId(op), candidates, costs));
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (Accepts(costs[i], best_cost, options.min_improvement)) {
          best_cost = costs[i];
          best_is_swap = false;
          best_a = OperationId(op);
          best_server = candidates[i];
        }
      }
    }
    if (options.use_swaps) {
      for (uint32_t a = 0; a < M && !result->budget_exhausted; ++a) {
        partners.clear();
        for (uint32_t b = a + 1; b < M; ++b) {
          if (eval.mapping().ServerOf(OperationId(a)) !=
              eval.mapping().ServerOf(OperationId(b))) {
            partners.push_back(OperationId(b));
          }
        }
        if (partners.empty()) continue;
        if (!budget_allows(partners.size())) {
          result->budget_exhausted = true;
          break;
        }
        costs.resize(partners.size());
        WSFLOW_RETURN_IF_ERROR(eval.ScoreSwaps(OperationId(a), partners,
                                               costs));
        for (size_t i = 0; i < partners.size(); ++i) {
          if (Accepts(costs[i], best_cost, options.min_improvement)) {
            best_cost = costs[i];
            best_is_swap = true;
            best_a = OperationId(a);
            best_b = partners[i];
          }
        }
      }
    }

    if (best_a.valid()) {
      if (best_is_swap) {
        WSFLOW_RETURN_IF_ERROR(eval.Swap(best_a, best_b));
      } else {
        WSFLOW_RETURN_IF_ERROR(eval.Apply(best_a, best_server));
      }
      eval.ClearHistory();
      incumbent = best_cost;
      improved = true;
    }
  }

  *mapping = eval.mapping();
  result->polish_evaluations = used();
  result->counters = eval.counters();
  return Status::OK();
}

Result<MigrationResult> Run(const CostModel& model, Mapping seed,
                            double weight, std::span<const double> base_loads,
                            const MigrationOptions& options) {
  MigrationResult result;
  const Mapping before = seed;
  WSFLOW_RETURN_IF_ERROR(
      Polish(model, weight, base_loads, options, &seed, &result));
  result.moved = !(seed == before);
  result.mapping = std::move(seed);
  WSFLOW_ASSIGN_OR_RETURN(
      result.cost, SharedEvaluate(model, result.mapping, weight, base_loads,
                                  options.cost_options));
  return result;
}

}  // namespace

Mapping SeedSharedMapping(const CostModel& model, double weight,
                          std::span<const double> base_loads) {
  const Workflow& w = model.workflow();
  const Network& n = model.network();
  const size_t M = w.num_operations();
  const size_t N = n.num_servers();

  // Heaviest-first worst fit against the combined farm loads: big
  // operations choose their server while the farm is emptiest, the tail
  // fills the valleys they leave.
  ExecutionProfile profile = model.ProfileSnapshot();
  WorkflowView view(w, &profile);
  std::vector<uint32_t> order(M);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return view.Cycles(OperationId(a)) > view.Cycles(OperationId(b));
  });

  std::vector<double> loads(base_loads.begin(), base_loads.end());
  loads.resize(N, 0.0);
  Mapping m(M);
  for (uint32_t op : order) {
    const double prob = model.OperationProb(OperationId(op));
    uint32_t best = 0;
    double best_load = kInf;
    for (uint32_t s = 0; s < N; ++s) {
      const double after =
          loads[s] + weight * prob * model.TprocOn(OperationId(op),
                                                   ServerId(s));
      if (after < best_load) {
        best_load = after;
        best = s;
      }
    }
    m.Assign(OperationId(op), ServerId(best));
    loads[best] = best_load;
  }
  return m;
}

Result<MigrationResult> MigrateTenant(const CostModel& model,
                                      const Mapping& current, double weight,
                                      std::span<const double> base_loads,
                                      const MigrationOptions& options) {
  WSFLOW_RETURN_IF_ERROR(CheckInputs(model, weight, base_loads));
  if (current.num_operations() != model.workflow().num_operations()) {
    return Status::InvalidArgument(
        "mapping does not match the model's workflow");
  }
  if (!current.IsTotal()) {
    return Status::InvalidArgument("migration needs a total warm mapping");
  }
  return Run(model, current, weight, base_loads, options);
}

Result<MigrationResult> RedeployTenantFromScratch(
    const CostModel& model, double weight,
    std::span<const double> base_loads, const MigrationOptions& options) {
  WSFLOW_RETURN_IF_ERROR(CheckInputs(model, weight, base_loads));
  return Run(model, SeedSharedMapping(model, weight, base_loads), weight,
             base_loads, options);
}

}  // namespace wsflow::fleet
