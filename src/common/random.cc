#include "src/common/random.h"

#include <cmath>

namespace wsflow {

namespace {
// splitmix64: seed expander recommended by the xoshiro authors.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  WSFLOW_CHECK_GT(bound, 0u);
  // Rejection sampling: discard values from the final partial bucket.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  WSFLOW_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 top bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  WSFLOW_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  WSFLOW_CHECK_GE(p, 0.0);
  WSFLOW_CHECK_LE(p, 1.0);
  return NextDouble() < p;
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  WSFLOW_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    WSFLOW_CHECK_GE(w, 0.0);
    total += w;
  }
  WSFLOW_CHECK_GT(total, 0.0);
  double x = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  // Floating-point edge: return the last index with positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() {
  return Rng(NextUint64() ^ 0xA5A5A5A5DEADBEEFULL);
}

}  // namespace wsflow
