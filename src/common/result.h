// wsflow: Result<T> — value-or-Status return type.
//
// A Result<T> holds either a T (the success value) or an error Status.
// Accessing value() on an error result aborts, mirroring the behaviour of
// arrow::Result / absl::StatusOr.

#ifndef WSFLOW_COMMON_RESULT_H_
#define WSFLOW_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <variant>

#include "src/common/status.h"

namespace wsflow {

template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a success result (implicit so `return value;` works).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result from a non-OK status (implicit so
  /// `return Status::InvalidArgument(...)` works). An OK status is a
  /// programming error and is converted to an Internal error.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(rep_).ok()) {
      rep_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status; OK when the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result is an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "wsflow: Result::value() on error: %s\n",
                   std::get<Status>(rep_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

}  // namespace wsflow

#endif  // WSFLOW_COMMON_RESULT_H_
