#include "src/common/status.h"

namespace wsflow {

namespace {
const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kAlreadyExists: return "already-exists";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kOutOfRange: return "out-of-range";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kParseError: return "parse-error";
    case StatusCode::kConstraintViolation: return "constraint-violation";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string msg)
    : rep_(code == StatusCode::kOk
               ? nullptr
               : std::make_unique<Rep>(Rep{code, std::move(msg)})) {}

Status::Status(const Status& other)
    : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace wsflow
