#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace wsflow {

void SummaryStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t n = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(n);
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

double SummaryStats::min() const { return count_ == 0 ? 0.0 : min_; }
double SummaryStats::max() const { return count_ == 0 ? 0.0 : max_; }

std::string SummaryStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

namespace {

/// Interpolated order statistic of an already-sorted, non-empty vector.
double SortedQuantile(const std::vector<double>& sorted, double q) {
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return SortedQuantile(values, q);
}

std::vector<double> Quantiles(std::vector<double> values,
                              const std::vector<double>& qs) {
  std::vector<double> out(qs.size(), 0.0);
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  for (size_t i = 0; i < qs.size(); ++i) {
    out[i] = SortedQuantile(values, qs[i]);
  }
  return out;
}

double Percentile(std::vector<double> values, double p) {
  return Quantile(std::move(values), p / 100.0);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

}  // namespace wsflow
