#include "src/common/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace wsflow {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty number");
  // std::from_chars for double is not available on all libstdc++ versions
  // shipped with older toolchains; strtod on a bounded copy is portable.
  std::string copy(s);
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) {
    return Status::ParseError("not a number: '" + copy + "'");
  }
  return value;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string FormatBits(double bits) {
  char buf[64];
  if (bits >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.4g Mbit", bits / 1e6);
  } else if (bits >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.4g Kbit", bits / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g bit", bits);
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  double abs = std::fabs(seconds);
  if (abs >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.4g s", seconds);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.4g ms", seconds * 1e3);
  } else if (abs >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.4g us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace wsflow
