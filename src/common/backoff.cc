#include "src/common/backoff.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace wsflow {

ExponentialBackoff::ExponentialBackoff(const BackoffOptions& options,
                                       uint64_t seed)
    : options_(options), rng_(seed) {
  WSFLOW_CHECK(options_.initial_delay_s > 0);
  WSFLOW_CHECK(options_.multiplier >= 1.0);
  WSFLOW_CHECK(options_.max_delay_s >= options_.initial_delay_s);
  WSFLOW_CHECK(options_.jitter >= 0 && options_.jitter < 1.0);
}

double ExponentialBackoff::NextDelay() {
  double base = options_.initial_delay_s *
                std::pow(options_.multiplier, static_cast<double>(attempts_));
  base = std::min(base, options_.max_delay_s);
  double swing = rng_.NextDouble(-options_.jitter, options_.jitter);
  ++attempts_;
  return base * (1.0 + swing);
}

}  // namespace wsflow
