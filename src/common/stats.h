// wsflow: streaming summary statistics and percentile helpers.
//
// Used by the experiment harness to aggregate per-trial measurements and by
// algorithms that need percentile thresholds (e.g. the Line-Line critical-
// bridge test uses 20th-percentile link speeds and message sizes).

#ifndef WSFLOW_COMMON_STATS_H_
#define WSFLOW_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace wsflow {

/// Welford-style streaming accumulator for count/mean/variance/min/max.
class SummaryStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const SummaryStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// "n=.. mean=.. sd=.. min=.. max=.." one-line rendering.
  std::string ToString() const;

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Returns the q-quantile (q in [0,1]) of `values` using linear
/// interpolation between order statistics. Empty input yields 0.
double Quantile(std::vector<double> values, double q);

/// Evaluates many quantiles on one sorted copy of `values` — exact order
/// statistics with linear interpolation, like Quantile, but sorting only
/// once. Returns one entry per q in `qs` (each clamped to [0,1]); an empty
/// input yields all zeros. Used by the serving metrics for p50/p95/p99.
std::vector<double> Quantiles(std::vector<double> values,
                              const std::vector<double>& qs);

/// Percentile shorthand: Quantile(values, p / 100) with p in [0,100].
double Percentile(std::vector<double> values, double p);

/// Arithmetic mean of `values`; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Median shorthand for Quantile(values, 0.5).
double Median(std::vector<double> values);

}  // namespace wsflow

#endif  // WSFLOW_COMMON_STATS_H_
