// wsflow: Status — lightweight error propagation without exceptions.
//
// Modeled after the RocksDB/Arrow idiom: functions that can fail return a
// Status (or a Result<T>, see result.h) instead of throwing. A Status is
// either OK or carries an error code plus a human-readable message.

#ifndef WSFLOW_COMMON_STATUS_H_
#define WSFLOW_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace wsflow {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a malformed value.
  kNotFound = 2,          ///< A referenced entity does not exist.
  kAlreadyExists = 3,     ///< Attempt to create a duplicate entity.
  kFailedPrecondition = 4,///< Object state does not admit the operation.
  kOutOfRange = 5,        ///< Index or parameter outside the valid domain.
  kUnimplemented = 6,     ///< Feature intentionally not provided.
  kInternal = 7,          ///< Invariant violation inside the library.
  kResourceExhausted = 8, ///< A configured limit was exceeded.
  kParseError = 9,        ///< Input text could not be parsed.
  kConstraintViolation = 10, ///< A user deployment constraint cannot be met.
  kDeadlineExceeded = 11, ///< The operation's deadline passed before it ran.
};

/// Returns a stable lower-case name for a code ("ok", "invalid-argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation: OK, or an error code with a message.
///
/// The OK state is represented by a null rep pointer so that returning OK is
/// free of allocation; error construction allocates once.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor for success.
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : rep_->code; }
  /// Error message; empty for OK statuses.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsConstraintViolation() const {
    return code() == StatusCode::kConstraintViolation;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message,
  /// e.g. `st.WithContext("loading workflow")`. OK stays OK.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // null == OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace wsflow

/// Propagates an error Status out of the current function.
#define WSFLOW_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::wsflow::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

// Internal helper for token pasting inside WSFLOW_ASSIGN_OR_RETURN.
#define WSFLOW_CONCAT_IMPL_(x, y) x##y
#define WSFLOW_CONCAT_(x, y) WSFLOW_CONCAT_IMPL_(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define WSFLOW_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto WSFLOW_CONCAT_(_res_, __LINE__) = (expr);                  \
  if (!WSFLOW_CONCAT_(_res_, __LINE__).ok())                      \
    return WSFLOW_CONCAT_(_res_, __LINE__).status();              \
  lhs = std::move(WSFLOW_CONCAT_(_res_, __LINE__)).value()

#endif  // WSFLOW_COMMON_STATUS_H_
