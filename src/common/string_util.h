// wsflow: small string helpers shared by serialization and reporting.

#ifndef WSFLOW_COMMON_STRING_UTIL_H_
#define WSFLOW_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace wsflow {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a decimal signed integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a floating-point number; the whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// Formats `value` with `digits` significant digits (for report tables).
std::string FormatDouble(double value, int digits = 6);

/// Renders bits as a human-readable size, e.g. "21392 B" or "2.5 Mbit".
std::string FormatBits(double bits);

/// Renders seconds with an adaptive unit, e.g. "12.3 ms".
std::string FormatSeconds(double seconds);

}  // namespace wsflow

#endif  // WSFLOW_COMMON_STRING_UTIL_H_
