// wsflow: deterministic exponential backoff with jitter.
//
// Retry pacing for transient failures (a full serve queue, a server mid-
// recovery): delays grow geometrically from `initial_delay_s`, are capped
// at `max_delay_s`, and carry a symmetric jitter fraction drawn from the
// explicitly seeded Rng — so a retry schedule replays bit-for-bit given
// the same seed, matching the library's determinism contract.

#ifndef WSFLOW_COMMON_BACKOFF_H_
#define WSFLOW_COMMON_BACKOFF_H_

#include <cstddef>
#include <cstdint>

#include "src/common/random.h"

namespace wsflow {

struct BackoffOptions {
  double initial_delay_s = 0.01;
  double multiplier = 2.0;
  /// Cap applied to the un-jittered base delay.
  double max_delay_s = 1.0;
  /// Attempts allowed before ShouldRetry() turns false; 0 = never retry.
  size_t max_retries = 5;
  /// Symmetric jitter fraction: the delay is base * (1 ± jitter).
  double jitter = 0.1;
};

class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(const BackoffOptions& options, uint64_t seed);

  /// True while fewer than max_retries delays have been taken.
  bool ShouldRetry() const { return attempts_ < options_.max_retries; }

  /// The next delay in seconds — base * multiplier^attempts, capped at
  /// max_delay_s, jittered — and advances the attempt counter. The jitter
  /// draw happens even with jitter == 0 so schedules with and without
  /// jitter consume the same random stream.
  double NextDelay();

  size_t attempts() const { return attempts_; }

  /// Back to attempt zero; the random stream is NOT rewound, so a reset
  /// schedule continues the jitter sequence rather than repeating it.
  void Reset() { attempts_ = 0; }

 private:
  BackoffOptions options_;
  Rng rng_;
  size_t attempts_ = 0;
};

}  // namespace wsflow

#endif  // WSFLOW_COMMON_BACKOFF_H_
