// wsflow: minimal leveled logging and check macros.
//
// Logging goes to stderr. The level is process-global and defaults to
// kWarning so that library users are not spammed; benches and examples raise
// it explicitly. WSFLOW_CHECK* abort on violation — they guard programmer
// invariants, not user input (user input errors surface as Status).

#ifndef WSFLOW_COMMON_LOGGING_H_
#define WSFLOW_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace wsflow {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the process-global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Fatal aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement below the active level without evaluating
/// the streamed operands' formatting.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace wsflow

#define WSFLOW_LOG_INTERNAL(level)                                     \
  ::wsflow::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define WSFLOW_LOG(severity)                                           \
  (::wsflow::LogLevel::k##severity < ::wsflow::GetLogLevel())          \
      ? (void)0                                                        \
      : ::wsflow::internal::LogMessageVoidify() &                      \
            WSFLOW_LOG_INTERNAL(::wsflow::LogLevel::k##severity)

/// Aborts with a message when `condition` is false.
#define WSFLOW_CHECK(condition)                                        \
  (condition) ? (void)0                                                \
              : ::wsflow::internal::LogMessageVoidify() &              \
                    WSFLOW_LOG_INTERNAL(::wsflow::LogLevel::kFatal)    \
                        << "Check failed: " #condition " "

#define WSFLOW_CHECK_EQ(a, b) WSFLOW_CHECK((a) == (b))
#define WSFLOW_CHECK_NE(a, b) WSFLOW_CHECK((a) != (b))
#define WSFLOW_CHECK_LT(a, b) WSFLOW_CHECK((a) < (b))
#define WSFLOW_CHECK_LE(a, b) WSFLOW_CHECK((a) <= (b))
#define WSFLOW_CHECK_GT(a, b) WSFLOW_CHECK((a) > (b))
#define WSFLOW_CHECK_GE(a, b) WSFLOW_CHECK((a) >= (b))

/// Like WSFLOW_CHECK but compiled out of release builds.
#ifndef NDEBUG
#define WSFLOW_DCHECK(condition) WSFLOW_CHECK(condition)
#else
#define WSFLOW_DCHECK(condition) \
  while (false) WSFLOW_CHECK(condition)
#endif

#endif  // WSFLOW_COMMON_LOGGING_H_
