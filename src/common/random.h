// wsflow: deterministic random number generation.
//
// All stochastic components of the library draw from a Rng seeded explicitly
// by the caller, making every experiment reproducible bit-for-bit. The
// engine is splitmix64 + xoshiro256**, small and fast, independent of the
// platform's std::mt19937 implementation details.

#ifndef WSFLOW_COMMON_RANDOM_H_
#define WSFLOW_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "src/common/logging.h"

namespace wsflow {

/// Deterministic 64-bit PRNG (xoshiro256**), explicitly seeded.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams on all platforms.
  explicit Rng(uint64_t seed);

  /// Uniform random 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound); bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in the closed interval [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli draw with success probability p in [0, 1].
  bool NextBool(double p);

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative with a positive sum.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; used to give each trial of an
  /// experiment its own stream so trials stay reproducible when reordered.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace wsflow

#endif  // WSFLOW_COMMON_RANDOM_H_
