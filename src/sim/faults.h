// wsflow: deterministic fault injection over virtual time.
//
// A FaultSchedule is a sorted list of (time, server, kind) events — crash,
// recover, slowdown — generated from an explicit seed, so every chaos run
// replays bit-for-bit: the same seed and options produce the same byte
// sequence of events on every platform, thread count, and run. Generation
// guarantees the crash/recover pairing never leaves the network below
// `min_alive` servers.
//
// A FaultTimeline is a forward-only cursor over a schedule: AdvanceTo(t)
// applies every event up to t and maintains the current ServerMask, which
// the serve layer feeds into its health tracker (src/serve/health.h) and
// the cost layer scores against (EvalTuning::mask).

#ifndef WSFLOW_SIM_FAULTS_H_
#define WSFLOW_SIM_FAULTS_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/network/server_mask.h"
#include "src/network/topology.h"

namespace wsflow {

enum class FaultKind : uint8_t {
  kCrash,     ///< The server goes down; placements on it are orphaned.
  kRecover,   ///< The server comes back and may take load again.
  kSlowdown,  ///< The server degrades (observational; it stays placeable).
};

std::string_view FaultKindToString(FaultKind kind);

/// Inverse of FaultKindToString; fails on unknown names.
Result<FaultKind> FaultKindFromString(std::string_view name);

struct FaultEvent {
  double time_s = 0;
  ServerId server;
  FaultKind kind = FaultKind::kCrash;
  /// For kSlowdown: multiplicative service-time factor (> 1 is slower).
  double severity = 1.0;
};

struct FaultScheduleOptions {
  uint64_t seed = 0;
  /// Virtual-time length of the run; crashes land in [5%, 70%] of it and
  /// every recovery by 95%, so a full run always ends fully recovered.
  double horizon_s = 100.0;
  /// Crash/recover pairs to schedule. A pair that cannot be placed without
  /// violating min_alive (or double-crashing a server) after bounded
  /// retries is skipped — count the events to learn the achieved number.
  size_t crashes = 0;
  double min_downtime_s = 5.0;
  double max_downtime_s = 20.0;
  /// Independent slowdown events in [0, 90%] of the horizon.
  size_t slowdowns = 0;
  /// Slowdown severities are drawn uniformly from (1, max_severity].
  double max_severity = 4.0;
  /// Never leave fewer than this many servers alive.
  size_t min_alive = 1;
};

class FaultSchedule {
 public:
  /// Seeded generation against `n`; see FaultScheduleOptions.
  static Result<FaultSchedule> Generate(const Network& n,
                                        const FaultScheduleOptions& options);

  /// Wraps explicit events (sorted canonically first). Rejects servers out
  /// of range, non-finite or negative times, crashes of already-down
  /// servers, recoveries of alive ones, and any instant with every server
  /// down.
  static Result<FaultSchedule> FromEvents(size_t num_servers,
                                          std::vector<FaultEvent> events);

  /// Parses the dialect ToString emits, one event per line
  /// ("t=12.345s crash s3", slowdowns with a trailing " x2.500" factor).
  /// Blank lines and lines starting with '#' are skipped, so schedules can
  /// live in annotated files (`wsflow simulate --faults-file`). Validates
  /// via FromEvents.
  static Result<FaultSchedule> Parse(size_t num_servers,
                                     std::string_view text);

  const std::vector<FaultEvent>& events() const { return events_; }
  size_t num_servers() const { return num_servers_; }

  /// Crash events in the schedule (== recoveries, by construction).
  size_t num_crashes() const;

  /// One line per event: "t=12.345s crash s3".
  std::string ToString() const;

 private:
  size_t num_servers_ = 0;
  std::vector<FaultEvent> events_;
};

/// Forward-only cursor over a schedule, maintaining the alive mask.
class FaultTimeline {
 public:
  explicit FaultTimeline(const FaultSchedule& schedule);

  /// Applies every event with time_s <= t; `t` must be non-decreasing
  /// across calls. Returns the events applied by this call.
  std::span<const FaultEvent> AdvanceTo(double t);

  const ServerMask& alive() const { return mask_; }
  bool done() const { return next_ >= schedule_->events().size(); }
  size_t next_index() const { return next_; }

 private:
  const FaultSchedule* schedule_;
  ServerMask mask_;
  size_t next_ = 0;
  double last_t_;
};

}  // namespace wsflow

#endif  // WSFLOW_SIM_FAULTS_H_
