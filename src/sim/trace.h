// wsflow: simulation traces.
//
// The simulator optionally records every event it processes; traces are
// used by tests to assert ordering properties and by examples to show the
// workflow unfolding over the server farm. Fault-aware simulation
// (src/sim/fault_sim.h) adds churn events — server crash/recover/slowdown
// plus token loss, backoff retries and re-dispatches — so a trace is a
// complete account of a degraded run. ToJson/ParseTraceJson round-trip a
// trace through a line-oriented JSON dump (`wsflow simulate --trace-json`).

#ifndef WSFLOW_SIM_TRACE_H_
#define WSFLOW_SIM_TRACE_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/network/server.h"
#include "src/network/topology.h"
#include "src/workflow/operation.h"
#include "src/workflow/workflow.h"

namespace wsflow {

enum class TraceEventType : uint8_t {
  kOperationStart,
  kOperationComplete,
  kMessageSent,
  kMessageDelivered,
  // Fault-aware kinds (src/sim/fault_sim.h). Server events carry no
  // operation; loss/retry/redispatch carry the affected operation and the
  // server it was lost on / re-attempted on / re-dispatched to.
  kServerCrash,
  kServerRecover,
  kServerSlowdown,
  kTokenLost,
  kRetry,
  kRedispatch,
};

std::string_view TraceEventTypeToString(TraceEventType type);

/// Inverse of TraceEventTypeToString; fails on unknown names.
Result<TraceEventType> TraceEventTypeFromString(std::string_view name);

struct TraceEvent {
  double time = 0;  ///< Simulation seconds.
  TraceEventType type = TraceEventType::kOperationStart;
  OperationId op;       ///< The acting operation (sender for messages);
                        ///< invalid for server fault events.
  OperationId peer;     ///< Message receiver; invalid for operation events.
  ServerId server;      ///< Host of `op` at event time, or the faulting
                        ///< server for server events.

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.time == b.time && a.type == b.type && a.op == b.op &&
           a.peer == b.peer && a.server == b.server;
  }
  friend bool operator!=(const TraceEvent& a, const TraceEvent& b) {
    return !(a == b);
  }
};

/// Chronological list of simulation events.
class Trace {
 public:
  void Record(TraceEvent event) { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Events of one type, in order.
  std::vector<TraceEvent> EventsOfType(TraceEventType type) const;

  /// Multi-line human-readable rendering.
  std::string ToString(const Workflow& w, const Network& n) const;

  /// One JSON object per event under an "events" array. Times print with
  /// %.17g so every double survives the round-trip bit-for-bit; invalid
  /// op/peer/server ids serialize as -1.
  std::string ToJson() const;

  friend bool operator==(const Trace& a, const Trace& b) {
    return a.events_ == b.events_;
  }
  friend bool operator!=(const Trace& a, const Trace& b) {
    return !(a == b);
  }

 private:
  std::vector<TraceEvent> events_;
};

/// Parses the exact dialect Trace::ToJson emits (whitespace-tolerant).
/// ParseTraceJson(t.ToJson()) == t for every trace.
Result<Trace> ParseTraceJson(std::string_view json);

}  // namespace wsflow

#endif  // WSFLOW_SIM_TRACE_H_
