// wsflow: simulation traces.
//
// The simulator optionally records every event it processes; traces are
// used by tests to assert ordering properties and by examples to show the
// workflow unfolding over the server farm.

#ifndef WSFLOW_SIM_TRACE_H_
#define WSFLOW_SIM_TRACE_H_

#include <string>
#include <vector>

#include "src/network/server.h"
#include "src/network/topology.h"
#include "src/workflow/operation.h"
#include "src/workflow/workflow.h"

namespace wsflow {

enum class TraceEventType : uint8_t {
  kOperationStart,
  kOperationComplete,
  kMessageSent,
  kMessageDelivered,
};

std::string_view TraceEventTypeToString(TraceEventType type);

struct TraceEvent {
  double time = 0;  ///< Simulation seconds.
  TraceEventType type = TraceEventType::kOperationStart;
  OperationId op;       ///< The acting operation (sender for messages).
  OperationId peer;     ///< Message receiver; invalid for operation events.
  ServerId server;      ///< Host of `op` at event time.
};

/// Chronological list of simulation events.
class Trace {
 public:
  void Record(TraceEvent event) { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Events of one type, in order.
  std::vector<TraceEvent> EventsOfType(TraceEventType type) const;

  /// Multi-line human-readable rendering.
  std::string ToString(const Workflow& w, const Network& n) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace wsflow

#endif  // WSFLOW_SIM_TRACE_H_
