#include "src/sim/fault_sim.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <queue>

#include "src/common/logging.h"
#include "src/deploy/repair.h"
#include "src/network/routing.h"
#include "src/network/server_mask.h"
#include "src/workflow/validate.h"

namespace wsflow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class EventKind : uint8_t {
  kTokenArrive,
  kOpComplete,
  kFault,            ///< Apply one schedule event (tag = schedule index).
  kRetry,            ///< Backoff-paced restart attempt for `op`.
  kRedispatchTimer,  ///< Timeout-based re-dispatch attempt for `op`.
};

struct Event {
  double time;
  uint64_t seq;  // FIFO tie-break for simultaneous events
  EventKind kind;
  OperationId op;
  OperationId sender;  // kTokenArrive: the message's sender (for tracing)
  uint32_t tag;        // kOpComplete: attempt; kTokenArrive: flight index;
                       // kFault: schedule index
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

enum class OpState : uint8_t { kIdle, kRunning, kDone };

/// Per-operation execution cell. `attempt` invalidates scheduled
/// completions; `epoch` invalidates in-flight deliveries — both bump when
/// a crash destroys the operation's progress.
struct OpCell {
  OpState state = OpState::kIdle;
  uint32_t attempt = 0;
  uint32_t epoch = 0;
  size_t tokens = 0;
  size_t live_inflight = 0;  ///< Un-delivered messages of the current epoch.
  double sched_completion = 0;
  double exec_factor = 1.0;  ///< Slowdown factor the completion was priced at.
  size_t recovery_attempts = 0;
  bool recovering = false;  ///< A kRetry/kRedispatchTimer event is pending.
  bool dead = false;        ///< Recovery budget spent; the run cannot heal it.
  std::unique_ptr<ExponentialBackoff> backoff;
};

/// An in-transit message. Cancelled when the sending server crashes
/// mid-flight; stale (epoch mismatch) when the receiver was orphaned after
/// the send.
struct Flight {
  ServerId from;
  OperationId to;
  uint32_t epoch = 0;
  bool cancelled = false;
};

struct RunCounters {
  size_t tokens_lost = 0;
  size_t messages_lost = 0;
  size_t retries = 0;
  size_t redispatches = 0;
  size_t gave_up = 0;
  size_t repairs = 0;
};

/// Seed of the per-operation backoff stream: independent of the XOR branch
/// substream so retry jitter never perturbs branch draws.
uint64_t BackoffSeed(uint64_t run_seed, OperationId op) {
  return PerRunSeed(run_seed ^ 0xB0FFull, op.value);
}

/// Point-to-point latency of `bits` from `from` to `to` over routes clear
/// of the down servers; contention-free (used for re-dispatch scoring).
Result<double> MaskedLatency(const Router& router, const Network& n,
                             double bits, ServerId from, ServerId to,
                             const ServerMask& mask) {
  if (from == to) return 0.0;
  WSFLOW_ASSIGN_OR_RETURN(Route route, router.FindRoute(from, to));
  if (!RouteAvoidsDown(route, n, from, to, mask)) {
    return Status::FailedPrecondition("route severed by down servers");
  }
  return route.TransmissionTime(n, bits) + route.TotalPropagation(n);
}

class FaultSimRun {
 public:
  FaultSimRun(const Workflow& w, const Network& n, const Mapping& m,
              const Router& router, const FaultSchedule& schedule,
              const FaultSimOptions& options, const CostModel* model,
              uint64_t run_seed, Rng* rng, Trace* trace)
      : w_(w),
        n_(n),
        router_(router),
        schedule_(schedule),
        options_(options),
        model_(model),
        run_seed_(run_seed),
        rng_(rng),
        trace_(trace),
        mapping_(m),
        mask_(ServerMask::AllAlive(n.num_servers())),
        factor_(n.num_servers(), 1.0),
        cells_(w.num_operations()),
        fired_(w.num_transitions(), 0),
        completion_(w.num_operations(), -1),
        server_free_(n.num_servers(), 0),
        link_free_(n.num_links(), 0),
        busy_(n.num_servers(), 0) {}

  /// Runs to queue exhaustion. Returns the sink's completion time, or
  /// nullopt when faults left the run incomplete.
  Result<std::optional<double>> Run(OperationId source, OperationId sink) {
    const auto& fault_events = schedule_.events();
    for (uint32_t i = 0; i < fault_events.size(); ++i) {
      Push(fault_events[i].time_s, EventKind::kFault, OperationId(),
           OperationId(), i);
    }
    StartExecution(source, 0.0);
    while (!queue_.empty()) {
      Event e = queue_.top();
      queue_.pop();
      switch (e.kind) {
        case EventKind::kTokenArrive:
          WSFLOW_RETURN_IF_ERROR(HandleToken(e));
          break;
        case EventKind::kOpComplete:
          WSFLOW_RETURN_IF_ERROR(HandleComplete(e));
          break;
        case EventKind::kFault:
          WSFLOW_RETURN_IF_ERROR(HandleFault(e));
          break;
        case EventKind::kRetry:
          WSFLOW_RETURN_IF_ERROR(HandleRetry(e));
          break;
        case EventKind::kRedispatchTimer:
          WSFLOW_RETURN_IF_ERROR(HandleRedispatch(e));
          break;
      }
    }
    if (completion_[sink.value] < 0) return std::optional<double>();
    return std::optional<double>(completion_[sink.value]);
  }

  const std::vector<double>& busy() const { return busy_; }
  const RunCounters& counters() const { return counters_; }

 private:
  void Push(double time, EventKind kind, OperationId op, OperationId sender,
            uint32_t tag = 0) {
    queue_.push(Event{time, seq_++, kind, op, sender, tag});
  }

  void Record(double time, TraceEventType type, OperationId op,
              OperationId peer, ServerId server) {
    if (trace_ != nullptr) {
      trace_->Record(TraceEvent{time, type, op, peer, server});
    }
  }

  bool alive(ServerId s) const { return mask_.alive(s); }

  /// Begins executing `op` at `ready_time` (subject to server contention
  /// and the host's current slowdown factor).
  void StartExecution(OperationId op, double ready_time) {
    OpCell& cell = cells_[op.value];
    WSFLOW_DCHECK(cell.state == OpState::kIdle);
    ServerId s = mapping_.ServerOf(op);
    double start = ready_time;
    if (options_.sim.server_contention) {
      start = std::max(start, server_free_[s.value]);
    }
    double proc = w_.operation(op).cycles() / n_.server(s).power_hz();
    proc *= factor_[s.value];
    if (options_.sim.server_contention) {
      server_free_[s.value] = start + proc;
    }
    busy_[s.value] += proc;
    cell.state = OpState::kRunning;
    cell.exec_factor = factor_[s.value];
    cell.sched_completion = start + proc;
    Record(start, TraceEventType::kOperationStart, op, OperationId(), s);
    Push(start + proc, EventKind::kOpComplete, op, OperationId(),
         ++cell.attempt);
  }

  Status HandleToken(const Event& e) {
    OpCell& cell = cells_[e.op.value];
    Flight& flight = flights_[e.tag];
    ServerId host = mapping_.ServerOf(e.op);
    const bool stale = flight.cancelled || flight.epoch != cell.epoch;
    if (stale) {
      // Destroyed in transit: the sender's server crashed mid-flight, or
      // the receiver was orphaned after the send.
      ++counters_.messages_lost;
      Record(e.time, TraceEventType::kTokenLost, e.op, e.sender, host);
      return Status::OK();
    }
    if (cell.live_inflight > 0) --cell.live_inflight;
    if (!alive(host)) {
      // Delivered into a dead server: the message is destroyed and the
      // receiver enters recovery (its eventual restart re-pulls every
      // fired input).
      ++counters_.messages_lost;
      Record(e.time, TraceEventType::kTokenLost, e.op, e.sender, host);
      if (cell.state == OpState::kIdle && !cell.dead) {
        Orphan(e.op, e.time, /*tokens_destroyed=*/false);
      }
      return Status::OK();
    }
    Record(e.time, TraceEventType::kMessageDelivered, e.sender, e.op,
           flight.from);
    if (cell.state != OpState::kIdle) {
      // OR-join semantics: the first successful arrival fired the join;
      // stragglers are ignored. (Every other node type receives exactly as
      // many tokens as its trigger needs.)
      return Status::OK();
    }
    ++cell.tokens;
    const Operation& op = w_.operation(e.op);
    size_t needed =
        op.type() == OperationType::kAndJoin ? w_.in_degree(e.op) : 1;
    if (cell.tokens >= needed) {
      cell.tokens = 0;
      StartExecution(e.op, e.time);
    }
    return Status::OK();
  }

  Status HandleComplete(const Event& e) {
    OpCell& cell = cells_[e.op.value];
    if (cell.state != OpState::kRunning || e.tag != cell.attempt) {
      return Status::OK();  // destroyed or rescheduled execution
    }
    cell.state = OpState::kDone;
    completion_[e.op.value] = e.time;
    Record(e.time, TraceEventType::kOperationComplete, e.op, OperationId(),
           mapping_.ServerOf(e.op));
    const Operation& op = w_.operation(e.op);
    const auto& outs = w_.out_edges(e.op);
    if (outs.empty()) return Status::OK();

    if (op.type() == OperationType::kXorSplit) {
      // Probabilistically weighted pick of exactly one path.
      std::vector<double> weights;
      weights.reserve(outs.size());
      for (TransitionId t : outs) {
        weights.push_back(w_.transition(t).branch_weight);
      }
      size_t pick = rng_->NextDiscrete(weights);
      WSFLOW_RETURN_IF_ERROR(Send(outs[pick], e.time));
    } else {
      for (TransitionId t : outs) {
        WSFLOW_RETURN_IF_ERROR(Send(t, e.time));
      }
    }
    return Status::OK();
  }

  Status Send(TransitionId t, double time) {
    const Transition& edge = w_.transition(t);
    fired_[t.value] = 1;
    ServerId from = mapping_.ServerOf(edge.from);
    ServerId to = mapping_.ServerOf(edge.to);
    OpCell& target = cells_[edge.to.value];
    Record(time, TraceEventType::kMessageSent, edge.from, edge.to, from);
    double arrival = time;
    if (from != to) {
      WSFLOW_ASSIGN_OR_RETURN(Route route, router_.FindRoute(from, to));
      for (LinkId l : route.links) {
        const Link& link = n_.link(l);
        double transmit = edge.message_bits / link.speed_bps;
        double start = arrival;
        if (options_.sim.bus_contention) {
          start = std::max(start, link_free_[l.value]);
          link_free_[l.value] = start + transmit;
        }
        arrival = start + transmit + link.propagation_s;
      }
    }
    uint32_t flight_id = static_cast<uint32_t>(flights_.size());
    flights_.push_back(Flight{from, edge.to, target.epoch, false});
    ++target.live_inflight;
    Push(arrival, EventKind::kTokenArrive, edge.to, edge.from, flight_id);
    return Status::OK();
  }

  // --- fault machinery -------------------------------------------------

  Status HandleFault(const Event& e) {
    const FaultEvent& fault = schedule_.events()[e.tag];
    switch (fault.kind) {
      case FaultKind::kCrash:
        return ApplyCrash(fault.server, e.time);
      case FaultKind::kRecover:
        mask_.SetAlive(fault.server, true);
        factor_[fault.server.value] = 1.0;
        Record(e.time, TraceEventType::kServerRecover, OperationId(),
               OperationId(), fault.server);
        return Status::OK();
      case FaultKind::kSlowdown:
        return ApplySlowdown(fault.server, fault.severity, e.time);
    }
    return Status::OK();
  }

  Status ApplyCrash(ServerId s, double t) {
    mask_.SetAlive(s, false);
    Record(t, TraceEventType::kServerCrash, OperationId(), OperationId(), s);

    // Destroy executions and waiting tokens hosted on the dead server.
    for (uint32_t i = 0; i < w_.num_operations(); ++i) {
      OperationId op(i);
      OpCell& cell = cells_[i];
      if (mapping_.ServerOf(op) != s || cell.dead) continue;
      if (cell.state == OpState::kRunning) {
        busy_[s.value] -= cell.sched_completion - t;
        ++cell.attempt;  // invalidate the scheduled completion
        cell.state = OpState::kIdle;
        ++counters_.tokens_lost;
        Record(t, TraceEventType::kTokenLost, op, OperationId(), s);
        Orphan(op, t, /*tokens_destroyed=*/true);
      } else if (cell.state == OpState::kIdle && cell.tokens > 0) {
        counters_.tokens_lost += cell.tokens;
        Record(t, TraceEventType::kTokenLost, op, OperationId(), s);
        Orphan(op, t, /*tokens_destroyed=*/true);
      }
    }

    // Destroy messages in flight *from* the dead server and push their
    // receivers into recovery (their restart re-pulls the lost input).
    for (uint32_t f = 0; f < flights_.size(); ++f) {
      Flight& flight = flights_[f];
      if (flight.from != s || flight.cancelled) continue;
      OpCell& target = cells_[flight.to.value];
      if (flight.epoch != target.epoch) continue;  // already stale
      flight.cancelled = true;
      if (target.live_inflight > 0) --target.live_inflight;
      if (target.state == OpState::kIdle && !target.dead) {
        Orphan(flight.to, t, /*tokens_destroyed=*/false);
      }
    }

    if (options_.repair) WSFLOW_RETURN_IF_ERROR(RepairAt(t));
    return Status::OK();
  }

  Status ApplySlowdown(ServerId s, double severity, double t) {
    factor_[s.value] = severity;
    Record(t, TraceEventType::kServerSlowdown, OperationId(), OperationId(),
           s);
    if (!alive(s)) return Status::OK();  // erased by the next recovery
    // Stretch the remaining service time of in-flight executions.
    for (uint32_t i = 0; i < w_.num_operations(); ++i) {
      OpCell& cell = cells_[i];
      OperationId op(i);
      if (cell.state != OpState::kRunning || mapping_.ServerOf(op) != s) {
        continue;
      }
      double remaining = cell.sched_completion - t;
      if (remaining <= 0) continue;
      double stretched = remaining * (severity / cell.exec_factor);
      double new_completion = t + stretched;
      busy_[s.value] += new_completion - cell.sched_completion;
      cell.sched_completion = new_completion;
      cell.exec_factor = severity;
      Push(new_completion, EventKind::kOpComplete, op, OperationId(),
           ++cell.attempt);
    }
    return Status::OK();
  }

  /// Resets an idle operation whose progress a crash destroyed and enters
  /// the recovery policy. Bumping the epoch invalidates every in-flight
  /// delivery, so the restart re-pulls the full fired input set — a lost
  /// input aborts the whole join rendezvous.
  void Orphan(OperationId op, double t, bool tokens_destroyed) {
    (void)tokens_destroyed;
    OpCell& cell = cells_[op.value];
    WSFLOW_DCHECK(cell.state == OpState::kIdle);
    cell.tokens = 0;
    cell.live_inflight = 0;
    ++cell.epoch;
    EnterRecovery(op, t);
  }

  void EnterRecovery(OperationId op, double t) {
    OpCell& cell = cells_[op.value];
    if (cell.dead || cell.recovering || cell.state != OpState::kIdle) return;
    if (options_.policy == LossPolicy::kNone) {
      cell.dead = true;
      ++counters_.gave_up;
      return;
    }
    if (++cell.recovery_attempts > options_.max_recovery_attempts) {
      cell.dead = true;
      ++counters_.gave_up;
      return;
    }
    const bool retries_allowed = options_.policy == LossPolicy::kRetry ||
                                 options_.policy ==
                                     LossPolicy::kRetryRedispatch;
    if (retries_allowed) {
      if (!cell.backoff) {
        cell.backoff = std::make_unique<ExponentialBackoff>(
            options_.backoff, BackoffSeed(run_seed_, op));
      }
      if (cell.backoff->ShouldRetry()) {
        cell.recovering = true;
        Push(t + cell.backoff->NextDelay(), EventKind::kRetry, op,
             OperationId());
        return;
      }
      if (options_.policy == LossPolicy::kRetry) {
        cell.dead = true;
        ++counters_.gave_up;
        return;
      }
    }
    // kRedispatch, or kRetryRedispatch past its retry budget.
    cell.recovering = true;
    Push(t + options_.redispatch_timeout_s, EventKind::kRedispatchTimer, op,
         OperationId());
  }

  Status HandleRetry(const Event& e) {
    OpCell& cell = cells_[e.op.value];
    cell.recovering = false;
    if (cell.dead || cell.state != OpState::kIdle) return Status::OK();
    if (CanRestart(e.op)) {
      ++counters_.retries;
      Record(e.time, TraceEventType::kRetry, e.op, OperationId(),
             mapping_.ServerOf(e.op));
      return Restart(e.op, e.time);
    }
    EnterRecovery(e.op, e.time);
    return Status::OK();
  }

  Status HandleRedispatch(const Event& e) {
    OpCell& cell = cells_[e.op.value];
    cell.recovering = false;
    if (cell.dead || cell.state != OpState::kIdle) return Status::OK();
    if (CanRestart(e.op)) {
      // The original host recovered while the timer ran: restart in place.
      ++counters_.retries;
      Record(e.time, TraceEventType::kRetry, e.op, OperationId(),
             mapping_.ServerOf(e.op));
      return Restart(e.op, e.time);
    }
    std::optional<ServerId> target = BestAliveServer(e.op);
    if (target.has_value()) {
      mapping_.Assign(e.op, *target);
      ++counters_.redispatches;
      Record(e.time, TraceEventType::kRedispatch, e.op, OperationId(),
             *target);
      return Restart(e.op, e.time);
    }
    EnterRecovery(e.op, e.time);
    return Status::OK();
  }

  /// True when `op` can restart where it sits: its host is alive and every
  /// fired input can be re-pulled over a route clear of the down servers.
  bool CanRestart(OperationId op) const {
    ServerId host = mapping_.ServerOf(op);
    if (!alive(host)) return false;
    for (TransitionId t : w_.in_edges(op)) {
      if (!fired_[t.value]) continue;
      const Transition& edge = w_.transition(t);
      ServerId from = mapping_.ServerOf(edge.from);
      if (!alive(from)) return false;
      Result<double> latency = MaskedLatency(
          router_, n_, edge.message_bits, from, host, mask_);
      if (!latency.ok()) return false;
    }
    return true;
  }

  /// Best alive landing for a re-dispatched operation under the masked
  /// cost model: argmin over alive servers of T_proc there plus the masked
  /// re-pull latency of every fired input; smallest id wins ties. Empty
  /// when some fired sender's host is down (the data is unreachable until
  /// it recovers) or no candidate has routes clear of the down servers.
  std::optional<ServerId> BestAliveServer(OperationId op) const {
    for (TransitionId t : w_.in_edges(op)) {
      if (fired_[t.value] &&
          !alive(mapping_.ServerOf(w_.transition(t).from))) {
        return std::nullopt;
      }
    }
    std::optional<ServerId> best;
    double best_score = kInf;
    for (uint32_t s = 0; s < n_.num_servers(); ++s) {
      ServerId server(s);
      if (!alive(server)) continue;
      double score = model_->TprocOn(op, server);
      bool feasible = true;
      for (TransitionId t : w_.in_edges(op)) {
        if (!fired_[t.value]) continue;
        const Transition& edge = w_.transition(t);
        Result<double> latency =
            MaskedLatency(router_, n_, edge.message_bits,
                          mapping_.ServerOf(edge.from), server, mask_);
        if (!latency.ok()) {
          feasible = false;
          break;
        }
        score += *latency;
      }
      if (feasible && score < best_score) {
        best_score = score;
        best = server;
      }
    }
    return best;
  }

  /// Restarts `op` on its (alive) host: re-pulls every fired input; a
  /// source simply begins executing again.
  Status Restart(OperationId op, double t) {
    bool any_fired = false;
    for (TransitionId tr : w_.in_edges(op)) {
      if (!fired_[tr.value]) continue;
      any_fired = true;
      WSFLOW_RETURN_IF_ERROR(Send(tr, t));
    }
    if (!any_fired) {
      WSFLOW_DCHECK(w_.in_degree(op) == 0);
      StartExecution(op, t);
    }
    return Status::OK();
  }

  /// Mid-run repair hook: heal the current mapping against the alive mask
  /// and move every cold operation (idle, no tokens arrived or in flight)
  /// onto the patched deployment. Orphans adopt their patched host too —
  /// their pending recovery lands there.
  Status RepairAt(double t) {
    RepairOptions repair_options;
    repair_options.eval_budget = options_.repair_eval_budget;
    Result<RepairResult> healed =
        RepairMapping(*model_, mapping_, mask_, repair_options);
    if (!healed.ok()) return Status::OK();  // severed: keep the mapping
    for (uint32_t i = 0; i < w_.num_operations(); ++i) {
      OperationId op(i);
      OpCell& cell = cells_[i];
      if (cell.state != OpState::kIdle || cell.dead || cell.tokens > 0 ||
          cell.live_inflight > 0) {
        continue;
      }
      ServerId target = healed->mapping.ServerOf(op);
      if (target != mapping_.ServerOf(op)) {
        mapping_.Assign(op, target);
        Record(t, TraceEventType::kRedispatch, op, OperationId(), target);
      }
    }
    ++counters_.repairs;
    return Status::OK();
  }

  const Workflow& w_;
  const Network& n_;
  const Router& router_;
  const FaultSchedule& schedule_;
  const FaultSimOptions& options_;
  const CostModel* model_;  ///< Null only when the schedule is empty.
  uint64_t run_seed_;
  Rng* rng_;
  Trace* trace_;

  Mapping mapping_;  ///< Per-run copy; re-dispatch and repair mutate it.
  ServerMask mask_;
  std::vector<double> factor_;

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  uint64_t seq_ = 0;
  std::vector<OpCell> cells_;
  std::vector<Flight> flights_;
  std::vector<uint8_t> fired_;
  std::vector<double> completion_;
  std::vector<double> server_free_;
  std::vector<double> link_free_;
  std::vector<double> busy_;
  RunCounters counters_;
};

}  // namespace

std::string_view LossPolicyToString(LossPolicy policy) {
  switch (policy) {
    case LossPolicy::kNone: return "none";
    case LossPolicy::kRetry: return "retry";
    case LossPolicy::kRedispatch: return "redispatch";
    case LossPolicy::kRetryRedispatch: return "retry+redispatch";
  }
  return "unknown";
}

Result<LossPolicy> LossPolicyFromString(std::string_view name) {
  for (uint8_t k = 0;
       k <= static_cast<uint8_t>(LossPolicy::kRetryRedispatch); ++k) {
    LossPolicy policy = static_cast<LossPolicy>(k);
    if (LossPolicyToString(policy) == name) return policy;
  }
  return Status::InvalidArgument("unknown loss policy: " +
                                 std::string(name));
}

Result<FaultSimResult> SimulateWithFaults(const Workflow& workflow,
                                          const Network& network,
                                          const Mapping& m,
                                          const FaultSchedule& schedule,
                                          const FaultSimOptions& options) {
  WSFLOW_RETURN_IF_ERROR(ValidateAll(workflow));
  WSFLOW_RETURN_IF_ERROR(m.ValidateAgainst(workflow, network));
  if (options.sim.num_runs == 0) {
    return Status::InvalidArgument("num_runs must be >= 1");
  }
  if (schedule.num_servers() != network.num_servers()) {
    return Status::InvalidArgument(
        "fault schedule sized for a different network");
  }
  if (!(options.redispatch_timeout_s > 0)) {
    return Status::InvalidArgument("redispatch timeout must be positive");
  }
  std::vector<OperationId> sources = workflow.Sources();
  std::vector<OperationId> sinks = workflow.Sinks();
  WSFLOW_CHECK_EQ(sources.size(), 1u);  // guaranteed by ValidateAll
  WSFLOW_CHECK_EQ(sinks.size(), 1u);

  Router router(network);
  // The cost model powers re-dispatch scoring, the repair hook and the
  // masked analytic comparison; the fault-free fast path skips it.
  std::optional<CostModel> model;
  if (!schedule.events().empty()) {
    model.emplace(workflow, network, options.profile);
  }

  FaultSimResult result;
  result.runs = options.sim.num_runs;
  result.server_busy.assign(network.num_servers(), 0.0);
  for (size_t run = 0; run < options.sim.num_runs; ++run) {
    const uint64_t run_seed = PerRunSeed(options.sim.seed, run);
    Rng rng(run_seed);
    Trace* trace =
        options.sim.record_trace && run == 0 ? &result.trace : nullptr;
    FaultSimRun sim(workflow, network, m, router, schedule, options,
                    model.has_value() ? &*model : nullptr, run_seed, &rng,
                    trace);
    WSFLOW_ASSIGN_OR_RETURN(std::optional<double> makespan,
                            sim.Run(sources[0], sinks[0]));
    if (makespan.has_value()) {
      ++result.completed_runs;
      result.makespans.push_back(*makespan);
    }
    for (size_t s = 0; s < network.num_servers(); ++s) {
      result.server_busy[s] += sim.busy()[s];
    }
    const RunCounters& c = sim.counters();
    result.tokens_lost += c.tokens_lost;
    result.messages_lost += c.messages_lost;
    result.retries += c.retries;
    result.redispatches += c.redispatches;
    result.gave_up += c.gave_up;
    result.repairs += c.repairs;
  }
  result.completion_rate = static_cast<double>(result.completed_runs) /
                           static_cast<double>(result.runs);
  double sum = 0;
  for (double v : result.makespans) sum += v;
  result.mean_makespan =
      result.makespans.empty()
          ? 0.0
          : sum / static_cast<double>(result.makespans.size());
  for (double& b : result.server_busy) {
    b /= static_cast<double>(options.sim.num_runs);
  }

  // The analytic side of the gap: masked T_execute of the repaired
  // deployment under the schedule's peak-churn mask.
  if (schedule.num_crashes() > 0) {
    ServerMask peak = ServerMask::AllAlive(network.num_servers());
    ServerMask current = ServerMask::AllAlive(network.num_servers());
    for (const FaultEvent& e : schedule.events()) {
      if (e.kind == FaultKind::kCrash) {
        current.SetAlive(e.server, false);
      } else if (e.kind == FaultKind::kRecover) {
        current.SetAlive(e.server, true);
      }
      if (current.num_down() > peak.num_down()) peak = current;
    }
    RepairOptions repair_options;
    Result<RepairResult> healed = RepairMapping(*model, m, peak,
                                                repair_options);
    result.analytic_masked_makespan =
        healed.ok() ? healed->cost.execution_time : kInf;
  }
  return result;
}

}  // namespace wsflow
