#include "src/sim/trace.h"

#include <sstream>

#include "src/common/string_util.h"

namespace wsflow {

std::string_view TraceEventTypeToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kOperationStart: return "start";
    case TraceEventType::kOperationComplete: return "complete";
    case TraceEventType::kMessageSent: return "send";
    case TraceEventType::kMessageDelivered: return "deliver";
  }
  return "unknown";
}

std::vector<TraceEvent> Trace::EventsOfType(TraceEventType type) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::string Trace::ToString(const Workflow& w, const Network& n) const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) {
    os << FormatSeconds(e.time) << "  " << TraceEventTypeToString(e.type)
       << " " << w.operation(e.op).name();
    if (e.peer.valid()) os << " -> " << w.operation(e.peer).name();
    if (e.server.valid()) os << " @" << n.server(e.server).name();
    os << "\n";
  }
  return os.str();
}

}  // namespace wsflow
