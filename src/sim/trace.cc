#include "src/sim/trace.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/common/string_util.h"

namespace wsflow {

std::string_view TraceEventTypeToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kOperationStart: return "start";
    case TraceEventType::kOperationComplete: return "complete";
    case TraceEventType::kMessageSent: return "send";
    case TraceEventType::kMessageDelivered: return "deliver";
    case TraceEventType::kServerCrash: return "crash";
    case TraceEventType::kServerRecover: return "recover";
    case TraceEventType::kServerSlowdown: return "slowdown";
    case TraceEventType::kTokenLost: return "loss";
    case TraceEventType::kRetry: return "retry";
    case TraceEventType::kRedispatch: return "redispatch";
  }
  return "unknown";
}

Result<TraceEventType> TraceEventTypeFromString(std::string_view name) {
  for (uint8_t k = 0; k <= static_cast<uint8_t>(TraceEventType::kRedispatch);
       ++k) {
    TraceEventType type = static_cast<TraceEventType>(k);
    if (TraceEventTypeToString(type) == name) return type;
  }
  return Status::InvalidArgument("unknown trace event type: " +
                                 std::string(name));
}

std::vector<TraceEvent> Trace::EventsOfType(TraceEventType type) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::string Trace::ToString(const Workflow& w, const Network& n) const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) {
    os << FormatSeconds(e.time) << "  " << TraceEventTypeToString(e.type);
    if (e.op.valid()) os << " " << w.operation(e.op).name();
    if (e.peer.valid()) os << " -> " << w.operation(e.peer).name();
    if (e.server.valid()) os << " @" << n.server(e.server).name();
    os << "\n";
  }
  return os.str();
}

namespace {

int64_t IdOrMinusOne(uint32_t value, uint32_t invalid) {
  return value == invalid ? -1 : static_cast<int64_t>(value);
}

}  // namespace

std::string Trace::ToJson() const {
  std::string out = "{\"events\": [\n";
  char buf[192];
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    std::snprintf(buf, sizeof(buf),
                  "  {\"t\": %.17g, \"type\": \"%s\", \"op\": %lld, "
                  "\"peer\": %lld, \"server\": %lld}%s\n",
                  e.time,
                  std::string(TraceEventTypeToString(e.type)).c_str(),
                  static_cast<long long>(
                      IdOrMinusOne(e.op.value, OperationId::kInvalid)),
                  static_cast<long long>(
                      IdOrMinusOne(e.peer.value, OperationId::kInvalid)),
                  static_cast<long long>(
                      IdOrMinusOne(e.server.value, ServerId::kInvalid)),
                  i + 1 < events_.size() ? "," : "");
    out += buf;
  }
  out += "]}\n";
  return out;
}

namespace {

/// Minimal cursor parser for the dialect ToJson emits. Tolerates arbitrary
/// whitespace between tokens but requires the key order t/type/op/peer/
/// server within each event object.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(
          std::string("trace json: expected '") + c + "' at offset " +
          std::to_string(pos_));
    }
    return Status::OK();
  }

  Status ExpectKey(std::string_view key) {
    WSFLOW_RETURN_IF_ERROR(Expect('"'));
    if (text_.substr(pos_, key.size()) != key) {
      return Status::InvalidArgument("trace json: expected key \"" +
                                     std::string(key) + "\"");
    }
    pos_ += key.size();
    WSFLOW_RETURN_IF_ERROR(Expect('"'));
    return Expect(':');
  }

  Result<double> ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == 'n' || text_[pos_] == 'a' ||
            text_[pos_] == 'i' || text_[pos_] == 'f')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("trace json: expected a number");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str()) {
      return Status::InvalidArgument("trace json: bad number: " + token);
    }
    return value;
  }

  Result<std::string> ParseString() {
    WSFLOW_RETURN_IF_ERROR(Expect('"'));
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
    if (pos_ == text_.size()) {
      return Status::InvalidArgument("trace json: unterminated string");
    }
    std::string value(text_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return value;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

uint32_t IdFromInt64(double value, uint32_t invalid) {
  if (value < 0) return invalid;
  return static_cast<uint32_t>(value);
}

}  // namespace

Result<Trace> ParseTraceJson(std::string_view json) {
  JsonCursor cur(json);
  WSFLOW_RETURN_IF_ERROR(cur.Expect('{'));
  WSFLOW_RETURN_IF_ERROR(cur.ExpectKey("events"));
  WSFLOW_RETURN_IF_ERROR(cur.Expect('['));
  Trace trace;
  if (!cur.Peek(']')) {
    do {
      WSFLOW_RETURN_IF_ERROR(cur.Expect('{'));
      TraceEvent e;
      WSFLOW_RETURN_IF_ERROR(cur.ExpectKey("t"));
      WSFLOW_ASSIGN_OR_RETURN(e.time, cur.ParseNumber());
      WSFLOW_RETURN_IF_ERROR(cur.Expect(','));
      WSFLOW_RETURN_IF_ERROR(cur.ExpectKey("type"));
      WSFLOW_ASSIGN_OR_RETURN(std::string type_name, cur.ParseString());
      WSFLOW_ASSIGN_OR_RETURN(e.type, TraceEventTypeFromString(type_name));
      WSFLOW_RETURN_IF_ERROR(cur.Expect(','));
      WSFLOW_RETURN_IF_ERROR(cur.ExpectKey("op"));
      WSFLOW_ASSIGN_OR_RETURN(double op, cur.ParseNumber());
      e.op = OperationId(IdFromInt64(op, OperationId::kInvalid));
      WSFLOW_RETURN_IF_ERROR(cur.Expect(','));
      WSFLOW_RETURN_IF_ERROR(cur.ExpectKey("peer"));
      WSFLOW_ASSIGN_OR_RETURN(double peer, cur.ParseNumber());
      e.peer = OperationId(IdFromInt64(peer, OperationId::kInvalid));
      WSFLOW_RETURN_IF_ERROR(cur.Expect(','));
      WSFLOW_RETURN_IF_ERROR(cur.ExpectKey("server"));
      WSFLOW_ASSIGN_OR_RETURN(double server, cur.ParseNumber());
      e.server = ServerId(IdFromInt64(server, ServerId::kInvalid));
      WSFLOW_RETURN_IF_ERROR(cur.Expect('}'));
      trace.Record(e);
    } while (cur.Consume(','));
  }
  WSFLOW_RETURN_IF_ERROR(cur.Expect(']'));
  WSFLOW_RETURN_IF_ERROR(cur.Expect('}'));
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trace json: trailing content");
  }
  return trace;
}

}  // namespace wsflow
