#include "src/sim/faults.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/common/string_util.h"

namespace wsflow {

namespace {

/// Canonical event order: time, then server, then kind, so equal-seed
/// schedules serialize identically and FromEvents validation is
/// deterministic for simultaneous events.
bool EventLess(const FaultEvent& a, const FaultEvent& b) {
  if (a.time_s != b.time_s) return a.time_s < b.time_s;
  if (a.server.value != b.server.value) return a.server.value < b.server.value;
  return static_cast<uint8_t>(a.kind) < static_cast<uint8_t>(b.kind);
}

struct DownSpan {
  double start_s = 0;
  double end_s = 0;
  uint32_t server = 0;
};

bool Overlaps(const DownSpan& span, double start_s, double end_s) {
  return span.start_s < end_s && start_s < span.end_s;
}

/// Largest number of accepted spans simultaneously down at any instant of
/// [start_s, end_s). Concurrency only changes where a span starts, so it
/// suffices to probe start_s and every overlapping span's start.
size_t MaxConcurrentDown(const std::vector<DownSpan>& spans, double start_s,
                         double end_s) {
  std::vector<double> probes = {start_s};
  for (const DownSpan& span : spans) {
    if (Overlaps(span, start_s, end_s) && span.start_s > start_s) {
      probes.push_back(span.start_s);
    }
  }
  size_t worst = 0;
  for (double t : probes) {
    size_t down = 0;
    for (const DownSpan& span : spans) {
      if (span.start_s <= t && t < span.end_s) ++down;
    }
    worst = std::max(worst, down);
  }
  return worst;
}

}  // namespace

std::string_view FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kSlowdown:
      return "slowdown";
  }
  return "unknown";
}

Result<FaultKind> FaultKindFromString(std::string_view name) {
  for (uint8_t k = 0; k <= static_cast<uint8_t>(FaultKind::kSlowdown); ++k) {
    FaultKind kind = static_cast<FaultKind>(k);
    if (FaultKindToString(kind) == name) return kind;
  }
  return Status::InvalidArgument("unknown fault kind: " + std::string(name));
}

Result<FaultSchedule> FaultSchedule::Generate(
    const Network& n, const FaultScheduleOptions& options) {
  const size_t N = n.num_servers();
  if (N == 0) {
    return Status::InvalidArgument("fault schedule needs a non-empty network");
  }
  if (!(options.horizon_s > 0) || !std::isfinite(options.horizon_s)) {
    return Status::InvalidArgument("horizon must be positive and finite");
  }
  if (options.min_downtime_s <= 0 ||
      options.max_downtime_s < options.min_downtime_s) {
    return Status::InvalidArgument("downtime range is empty or non-positive");
  }
  if (options.min_alive == 0 || options.min_alive > N) {
    return Status::InvalidArgument(
        "min_alive must be in [1, num_servers]");
  }
  if (options.slowdowns > 0 && options.max_severity <= 1.0) {
    return Status::InvalidArgument("slowdown severity must exceed 1");
  }

  Rng rng(options.seed);
  std::vector<FaultEvent> events;
  std::vector<DownSpan> spans;
  const size_t max_down = N - options.min_alive;

  // Place each crash/recover pair by bounded rejection sampling: the span
  // must not overlap another outage of the same server and must keep at
  // least min_alive servers up at every instant it covers. An unplaceable
  // pair is skipped, not an error — a saturated schedule simply achieves
  // fewer crashes than requested.
  constexpr int kAttempts = 64;
  for (size_t c = 0; c < options.crashes; ++c) {
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      uint32_t server = static_cast<uint32_t>(rng.NextBounded(N));
      double start =
          rng.NextDouble(0.05 * options.horizon_s, 0.70 * options.horizon_s);
      double downtime =
          rng.NextDouble(options.min_downtime_s, options.max_downtime_s);
      double end = std::min(start + downtime, 0.95 * options.horizon_s);
      if (end <= start) continue;

      bool clash = false;
      for (const DownSpan& span : spans) {
        if (span.server == server && Overlaps(span, start, end)) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      if (MaxConcurrentDown(spans, start, end) + 1 > max_down) continue;

      spans.push_back(DownSpan{start, end, server});
      events.push_back(
          FaultEvent{start, ServerId(server), FaultKind::kCrash, 1.0});
      events.push_back(
          FaultEvent{end, ServerId(server), FaultKind::kRecover, 1.0});
      break;
    }
  }

  for (size_t i = 0; i < options.slowdowns; ++i) {
    uint32_t server = static_cast<uint32_t>(rng.NextBounded(N));
    double t = rng.NextDouble(0.0, 0.90 * options.horizon_s);
    double severity = rng.NextDouble(1.0, options.max_severity);
    if (severity <= 1.0) severity = options.max_severity;
    events.push_back(
        FaultEvent{t, ServerId(server), FaultKind::kSlowdown, severity});
  }

  return FromEvents(N, std::move(events));
}

Result<FaultSchedule> FaultSchedule::FromEvents(
    size_t num_servers, std::vector<FaultEvent> events) {
  if (num_servers == 0) {
    return Status::InvalidArgument("fault schedule needs at least one server");
  }
  std::sort(events.begin(), events.end(), EventLess);

  std::vector<uint8_t> down(num_servers, 0);
  size_t num_down = 0;
  for (const FaultEvent& e : events) {
    if (e.server.value >= num_servers) {
      return Status::InvalidArgument("fault event names an unknown server");
    }
    if (!std::isfinite(e.time_s) || e.time_s < 0) {
      return Status::InvalidArgument("fault event time must be >= 0");
    }
    switch (e.kind) {
      case FaultKind::kCrash:
        if (down[e.server.value]) {
          return Status::InvalidArgument("crash of an already-down server");
        }
        down[e.server.value] = 1;
        ++num_down;
        if (num_down == num_servers) {
          return Status::FailedPrecondition(
              "fault schedule takes every server down at once");
        }
        break;
      case FaultKind::kRecover:
        if (!down[e.server.value]) {
          return Status::InvalidArgument("recovery of an alive server");
        }
        down[e.server.value] = 0;
        --num_down;
        break;
      case FaultKind::kSlowdown:
        if (!(e.severity > 1.0) || !std::isfinite(e.severity)) {
          return Status::InvalidArgument("slowdown severity must exceed 1");
        }
        break;
    }
  }

  FaultSchedule schedule;
  schedule.num_servers_ = num_servers;
  schedule.events_ = std::move(events);
  return schedule;
}

Result<FaultSchedule> FaultSchedule::Parse(size_t num_servers,
                                           std::string_view text) {
  std::vector<FaultEvent> events;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') continue;

    auto fail = [&](const std::string& what) {
      return Status::InvalidArgument("fault schedule line " +
                                     std::to_string(line_no) + ": " + what);
    };
    std::vector<std::string> fields;
    for (std::string& f : Split(std::string(line), ' ')) {
      if (!f.empty()) fields.push_back(std::move(f));
    }
    if (fields.size() < 3 || fields.size() > 4) {
      return fail("expected 't=<sec>s <kind> s<server>[ x<factor>]'");
    }
    FaultEvent e;
    const std::string& t = fields[0];
    if (t.size() < 4 || !StartsWith(t, "t=") || t.back() != 's') {
      return fail("bad time field: " + t);
    }
    WSFLOW_ASSIGN_OR_RETURN(
        e.time_s, ParseDouble(std::string_view(t).substr(2, t.size() - 3)));
    WSFLOW_ASSIGN_OR_RETURN(e.kind, FaultKindFromString(fields[1]));
    const std::string& server = fields[2];
    if (server.size() < 2 || server.front() != 's') {
      return fail("bad server field: " + server);
    }
    WSFLOW_ASSIGN_OR_RETURN(
        int64_t id, ParseInt64(std::string_view(server).substr(1)));
    if (id < 0) return fail("bad server id: " + server);
    e.server = ServerId(static_cast<uint32_t>(id));
    if (fields.size() == 4) {
      if (e.kind != FaultKind::kSlowdown || fields[3].front() != 'x') {
        return fail("unexpected trailing field: " + fields[3]);
      }
      WSFLOW_ASSIGN_OR_RETURN(
          e.severity, ParseDouble(std::string_view(fields[3]).substr(1)));
    } else if (e.kind == FaultKind::kSlowdown) {
      return fail("slowdown needs an x<factor> field");
    }
    events.push_back(e);
  }
  return FromEvents(num_servers, std::move(events));
}

size_t FaultSchedule::num_crashes() const {
  size_t crashes = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kCrash) ++crashes;
  }
  return crashes;
}

std::string FaultSchedule::ToString() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    out += "t=" + FormatDouble(e.time_s, 3) + "s " +
           std::string(FaultKindToString(e.kind)) + " s" +
           std::to_string(e.server.value);
    if (e.kind == FaultKind::kSlowdown) {
      out += " x" + FormatDouble(e.severity, 3);
    }
    out += "\n";
  }
  return out;
}

FaultTimeline::FaultTimeline(const FaultSchedule& schedule)
    : schedule_(&schedule),
      mask_(ServerMask::AllAlive(schedule.num_servers())),
      last_t_(-std::numeric_limits<double>::infinity()) {}

std::span<const FaultEvent> FaultTimeline::AdvanceTo(double t) {
  WSFLOW_CHECK(t >= last_t_);
  last_t_ = t;
  const std::vector<FaultEvent>& events = schedule_->events();
  size_t first = next_;
  while (next_ < events.size() && events[next_].time_s <= t) {
    const FaultEvent& e = events[next_];
    switch (e.kind) {
      case FaultKind::kCrash:
        mask_.SetAlive(e.server, false);
        break;
      case FaultKind::kRecover:
        mask_.SetAlive(e.server, true);
        break;
      case FaultKind::kSlowdown:
        break;  // observational; the mask is about placeability
    }
    ++next_;
  }
  return std::span<const FaultEvent>(events.data() + first, next_ - first);
}

}  // namespace wsflow
