#include "src/sim/stream.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/network/routing.h"
#include "src/workflow/validate.h"

namespace wsflow {

namespace {

enum class EventKind : uint8_t { kArrival, kTokenArrive, kOpComplete };

struct Event {
  double time;
  uint64_t seq;
  EventKind kind;
  uint32_t instance;
  OperationId op;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Per-instance execution state.
struct InstanceState {
  std::vector<uint8_t> started;
  std::vector<uint32_t> tokens;
  double arrival = 0;
  double completion = -1;
};

class StreamSim {
 public:
  StreamSim(const Workflow& w, const Network& n, const Mapping& m,
            const StreamOptions& options)
      : w_(w),
        n_(n),
        m_(m),
        options_(options),
        router_(n),
        rng_(options.seed),
        server_free_(n.num_servers(), 0),
        link_free_(n.num_links(), 0),
        busy_(n.num_servers(), 0) {}

  Result<StreamResult> Run() {
    OperationId source = w_.Sources()[0];
    OperationId sink = w_.Sinks()[0];

    instances_.resize(options_.num_instances);
    double t = 0;
    for (size_t i = 0; i < options_.num_instances; ++i) {
      // Exponential interarrival times with the configured rate; the first
      // instance arrives immediately.
      if (i > 0) {
        t += -std::log(1.0 - rng_.NextDouble()) / options_.arrival_rate;
      }
      instances_[i].arrival = t;
      instances_[i].started.assign(w_.num_operations(), 0);
      instances_[i].tokens.assign(w_.num_operations(), 0);
      Push(t, EventKind::kArrival, static_cast<uint32_t>(i), source);
    }

    while (!queue_.empty()) {
      Event e = queue_.top();
      queue_.pop();
      switch (e.kind) {
        case EventKind::kArrival:
          StartOperation(e.instance, e.op, e.time);
          break;
        case EventKind::kTokenArrive:
          HandleToken(e);
          break;
        case EventKind::kOpComplete:
          WSFLOW_RETURN_IF_ERROR(HandleComplete(e, sink));
          break;
      }
    }

    StreamResult result;
    result.server_busy = busy_;
    for (const InstanceState& inst : instances_) {
      if (inst.completion < 0) {
        return Status::Internal("an instance never completed");
      }
      result.latencies.push_back(inst.completion - inst.arrival);
      result.total_time = std::max(result.total_time, inst.completion);
    }
    result.mean_latency = Mean(result.latencies);
    result.p95_latency = Quantile(result.latencies, 0.95);
    result.max_latency = Quantile(result.latencies, 1.0);
    result.throughput = result.total_time > 0
                            ? static_cast<double>(options_.num_instances) /
                                  result.total_time
                            : 0.0;
    result.server_utilization.resize(busy_.size(), 0.0);
    if (result.total_time > 0) {
      for (size_t s = 0; s < busy_.size(); ++s) {
        result.server_utilization[s] = busy_[s] / result.total_time;
      }
    }
    return result;
  }

 private:
  void Push(double time, EventKind kind, uint32_t instance, OperationId op) {
    queue_.push(Event{time, seq_++, kind, instance, op});
  }

  void StartOperation(uint32_t instance, OperationId op, double ready) {
    InstanceState& inst = instances_[instance];
    WSFLOW_DCHECK(!inst.started[op.value]);
    inst.started[op.value] = 1;
    ServerId s = m_.ServerOf(op);
    double start = ready;
    if (options_.server_contention) {
      start = std::max(start, server_free_[s.value]);
    }
    double proc = w_.operation(op).cycles() / n_.server(s).power_hz();
    if (options_.server_contention) {
      server_free_[s.value] = start + proc;
    }
    busy_[s.value] += proc;
    Push(start + proc, EventKind::kOpComplete, instance, op);
  }

  void HandleToken(const Event& e) {
    InstanceState& inst = instances_[e.instance];
    if (inst.started[e.op.value]) return;  // OR-join stragglers
    ++inst.tokens[e.op.value];
    const Operation& op = w_.operation(e.op);
    size_t needed =
        op.type() == OperationType::kAndJoin ? w_.in_degree(e.op) : 1;
    if (inst.tokens[e.op.value] >= needed) {
      StartOperation(e.instance, e.op, e.time);
    }
  }

  Result<double> Deliver(TransitionId t, uint32_t instance, double time) {
    const Transition& edge = w_.transition(t);
    ServerId from = m_.ServerOf(edge.from);
    ServerId to = m_.ServerOf(edge.to);
    if (from == to) {
      Push(time, EventKind::kTokenArrive, instance, edge.to);
      return time;
    }
    WSFLOW_ASSIGN_OR_RETURN(Route route, router_.FindRoute(from, to));
    double arrival = time;
    for (LinkId l : route.links) {
      const Link& link = n_.link(l);
      double transmit = edge.message_bits / link.speed_bps;
      double start = arrival;
      if (options_.bus_contention) {
        start = std::max(start, link_free_[l.value]);
        link_free_[l.value] = start + transmit;
      }
      arrival = start + transmit + link.propagation_s;
    }
    Push(arrival, EventKind::kTokenArrive, instance, edge.to);
    return arrival;
  }

  Status HandleComplete(const Event& e, OperationId sink) {
    if (e.op == sink) {
      instances_[e.instance].completion = e.time;
      return Status::OK();
    }
    const Operation& op = w_.operation(e.op);
    const auto& outs = w_.out_edges(e.op);
    if (op.type() == OperationType::kXorSplit) {
      std::vector<double> weights;
      weights.reserve(outs.size());
      for (TransitionId t : outs) {
        weights.push_back(w_.transition(t).branch_weight);
      }
      size_t pick = rng_.NextDiscrete(weights);
      WSFLOW_ASSIGN_OR_RETURN(double ignored,
                              Deliver(outs[pick], e.instance, e.time));
      (void)ignored;
      return Status::OK();
    }
    for (TransitionId t : outs) {
      WSFLOW_ASSIGN_OR_RETURN(double ignored, Deliver(t, e.instance, e.time));
      (void)ignored;
    }
    return Status::OK();
  }

  const Workflow& w_;
  const Network& n_;
  const Mapping& m_;
  const StreamOptions& options_;
  Router router_;
  Rng rng_;

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  uint64_t seq_ = 0;
  std::vector<InstanceState> instances_;
  std::vector<double> server_free_;
  std::vector<double> link_free_;
  std::vector<double> busy_;
};

}  // namespace

Result<StreamResult> SimulateWorkflowStream(const Workflow& workflow,
                                            const Network& network,
                                            const Mapping& m,
                                            const StreamOptions& options) {
  WSFLOW_RETURN_IF_ERROR(ValidateAll(workflow));
  WSFLOW_RETURN_IF_ERROR(m.ValidateAgainst(workflow, network));
  if (options.num_instances == 0) {
    return Status::InvalidArgument("num_instances must be >= 1");
  }
  if (options.arrival_rate <= 0) {
    return Status::InvalidArgument("arrival_rate must be positive");
  }
  return StreamSim(workflow, network, m, options).Run();
}

}  // namespace wsflow
