// wsflow: fault-aware discrete-event simulation.
//
// SimulateWithFaults replays a FaultSchedule (src/sim/faults.h) on the
// simulator's virtual clock while the deployed workflow executes:
//
//   * a *crash* destroys every operation execution running on the dead
//     server, every token a waiting operation holds there, and every
//     in-transit message touching it (sent from it or addressed to an
//     operation hosted on it);
//   * a *slowdown* stretches the remaining service time of in-flight
//     executions on the server and slows later ones by the severity
//     factor until the server next recovers;
//   * a *recovery* restores full capacity and makes the server placeable
//     again.
//
// On loss, a configurable recovery policy drives the run back to
// completion: per-operation retry paced by ExponentialBackoff
// (src/common/backoff.h, seeded, deterministic), timeout-based
// re-dispatch to the best alive server under the masked cost model, and
// an optional mid-run repair hook that invokes RepairMapping
// (src/deploy/repair.h) at crash epochs so surviving tokens resume on the
// patched deployment. Every run replays the same schedule on its own
// clock; runs differ only in their XOR branch and backoff jitter draws,
// which come from independent per-run substreams (PerRunSeed) so results
// are reproducible run by run, in any run-count grouping.
//
// With an empty schedule the simulation is *byte-identical* to plain
// SimulateWorkflow — same makespans, same traces, same busy accounting —
// because both entry points drive the same event core (test-enforced).
// The reported FaultSimResult puts the measured degraded makespan side by
// side with the analytic masked T_execute of the repaired deployment at
// peak churn, the gap the ROADMAP asks the simulator to ground-truth.

#ifndef WSFLOW_SIM_FAULT_SIM_H_
#define WSFLOW_SIM_FAULT_SIM_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/result.h"
#include "src/cost/cost_model.h"
#include "src/deploy/mapping.h"
#include "src/network/topology.h"
#include "src/sim/faults.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/workflow/workflow.h"

namespace wsflow {

/// What happens to an operation whose execution, tokens or inputs a crash
/// destroyed.
enum class LossPolicy : uint8_t {
  /// Nothing: the run completes only if the sink never depended on the
  /// loss. Measures raw in-flight instance loss.
  kNone,
  /// Backoff-paced re-attempts on the operation's (possibly recovered)
  /// host; gives up when the retry budget is spent.
  kRetry,
  /// After redispatch_timeout_s, move the operation to the best alive
  /// server under the masked cost model and re-pull its inputs.
  kRedispatch,
  /// Retry while the backoff budget lasts, then fall back to re-dispatch
  /// — the default, and the policy the acceptance gate holds to 100%
  /// completion on the committed exemplar.
  kRetryRedispatch,
};

std::string_view LossPolicyToString(LossPolicy policy);
Result<LossPolicy> LossPolicyFromString(std::string_view name);

struct FaultSimOptions {
  /// Base simulation knobs (runs, seed, contention, tracing). The seed is
  /// split into per-run substreams; see PerRunSeed in simulator.h.
  SimOptions sim;
  LossPolicy policy = LossPolicy::kRetryRedispatch;
  /// Retry pacing for kRetry / kRetryRedispatch.
  BackoffOptions backoff;
  /// Wait before a lost operation is re-dispatched (kRedispatch counts it
  /// from the loss; kRetryRedispatch from the last exhausted retry).
  double redispatch_timeout_s = 0.05;
  /// Hard cap on recovery attempts (retries + re-dispatch probes) per
  /// operation per run, so schedules that never recover terminate.
  size_t max_recovery_attempts = 64;
  /// Invoke RepairMapping at every crash epoch and move cold operations
  /// (no tokens arrived or in flight) onto the patched deployment.
  bool repair = false;
  /// Delta-evaluation budget of each mid-run repair (0 = unlimited).
  size_t repair_eval_budget = 256;
  /// Execution probabilities for the masked analytic comparison and the
  /// repair hook; may be null.
  const ExecutionProfile* profile = nullptr;
};

struct FaultSimResult {
  size_t runs = 0;
  size_t completed_runs = 0;
  /// completed_runs / runs.
  double completion_rate = 0;
  /// Makespans of the *completed* runs, in run order.
  std::vector<double> makespans;
  /// Mean makespan over the completed runs (0 when none completed).
  double mean_makespan = 0;
  /// Mean useful busy seconds per server over all runs (destroyed work is
  /// charged only up to the crash instant).
  std::vector<double> server_busy;
  /// Executions destroyed mid-flight plus waiting tokens destroyed at a
  /// crashed host, summed over runs.
  size_t tokens_lost = 0;
  /// In-transit messages destroyed by crashes, summed over runs.
  size_t messages_lost = 0;
  /// Backoff re-attempts that actually restarted an operation.
  size_t retries = 0;
  /// Operations moved to a new alive server.
  size_t redispatches = 0;
  /// Operations abandoned with their recovery budget spent.
  size_t gave_up = 0;
  /// Mid-run RepairMapping invocations (successful ones).
  size_t repairs = 0;
  /// Masked analytic T_execute of the repaired deployment under the
  /// schedule's peak-churn mask (RepairMapping from the input mapping;
  /// +infinity when the masked deployment is severed; 0 when the schedule
  /// has no crash and there is nothing to mask).
  double analytic_masked_makespan = 0;
  /// Trace of the first run when sim.record_trace is set, including
  /// crash/recover/slowdown, loss, retry and redispatch events.
  Trace trace;
};

/// Simulates `options.sim.num_runs` fault-injected executions of the
/// workflow deployed per `m` over `network`, replaying `schedule` on each
/// run's virtual clock. The mapping must be total, the workflow
/// well-formed and the schedule sized to the network.
Result<FaultSimResult> SimulateWithFaults(const Workflow& workflow,
                                          const Network& network,
                                          const Mapping& m,
                                          const FaultSchedule& schedule,
                                          const FaultSimOptions& options = {});

}  // namespace wsflow

#endif  // WSFLOW_SIM_FAULT_SIM_H_
