// wsflow: discrete-event simulation of a deployed workflow.
//
// The simulator is the library's independent oracle: it *executes* a mapped
// workflow over the server network event by event — operations fire when
// their control tokens arrive, messages travel with T_comm latency, XOR
// splits sample one branch, AND joins rendezvous, OR joins fire on the
// first arrival — and reports the makespan. For deterministic workflows
// (no XOR) the makespan must equal the analytic T_execute exactly; for XOR
// workflows the Monte-Carlo mean converges to the analytic expectation.
// Tests assert both.
//
// By default every server executes its operations with unbounded
// parallelism and the bus carries any number of simultaneous transfers,
// matching the analytic model's assumptions. Two contention switches make
// the simulation more physical than the paper's model (extensions):
// serialize operations per server, and serialize transfers on the bus.

#ifndef WSFLOW_SIM_SIMULATOR_H_
#define WSFLOW_SIM_SIMULATOR_H_

#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/deploy/mapping.h"
#include "src/network/topology.h"
#include "src/sim/trace.h"
#include "src/workflow/workflow.h"

namespace wsflow {

struct SimOptions {
  /// Monte-Carlo runs; XOR branches re-sample each run. Deterministic
  /// workflows need only 1.
  size_t num_runs = 1;
  /// Seed for XOR branch sampling. Each run draws from its own substream
  /// (PerRunSeed below), so run i's makespan is the same whatever
  /// num_runs it is grouped into — and whatever other streams (fault
  /// retries, backoff jitter) consume.
  uint64_t seed = 0;
  /// Serialize operations sharing a server (FIFO by ready time).
  bool server_contention = false;
  /// Serialize message transfers on a shared bus (FIFO by send time).
  bool bus_contention = false;
  /// Record a Trace for the first run.
  bool record_trace = false;
};

struct SimResult {
  /// Mean makespan over the runs, in seconds.
  double mean_makespan = 0;
  /// Per-run makespans.
  std::vector<double> makespans;
  /// Mean busy seconds per server (indexed by ServerId::value).
  std::vector<double> server_busy;
  /// Trace of the first run when requested.
  Trace trace;
};

/// Simulates `options.num_runs` executions of the workflow deployed per
/// `m` over `network`. The mapping must be total and the workflow
/// well-formed.
Result<SimResult> SimulateWorkflow(const Workflow& workflow,
                                   const Network& network, const Mapping& m,
                                   const SimOptions& options = {});

/// The seed of run `run`'s private random substream: a splitmix64-style
/// hash of (seed, run). Separate substreams per run keep every run's
/// draws independent — retry sampling in run i never perturbs XOR branch
/// draws in run j, and prefixes agree across num_runs groupings.
uint64_t PerRunSeed(uint64_t seed, size_t run);

}  // namespace wsflow

#endif  // WSFLOW_SIM_SIMULATOR_H_
