#include "src/sim/simulator.h"

#include <utility>

#include "src/sim/fault_sim.h"
#include "src/sim/faults.h"

namespace wsflow {

uint64_t PerRunSeed(uint64_t seed, size_t run) {
  // splitmix64 of the run index offset by the seed: cheap, well-mixed, and
  // distinct streams for adjacent runs even with seed 0.
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(run) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Result<SimResult> SimulateWorkflow(const Workflow& workflow,
                                   const Network& network, const Mapping& m,
                                   const SimOptions& options) {
  // One event core serves both entry points: the fault-free simulation is
  // SimulateWithFaults with an empty schedule and no recovery policy, so
  // the two stay byte-identical by construction (test-enforced).
  WSFLOW_ASSIGN_OR_RETURN(
      FaultSchedule empty,
      FaultSchedule::FromEvents(network.num_servers(), {}));
  FaultSimOptions fault_options;
  fault_options.sim = options;
  fault_options.policy = LossPolicy::kNone;
  WSFLOW_ASSIGN_OR_RETURN(
      FaultSimResult faulted,
      SimulateWithFaults(workflow, network, m, empty, fault_options));
  if (faulted.completed_runs < faulted.runs) {
    return Status::Internal(
        "simulation drained without completing the sink operation");
  }
  SimResult result;
  result.mean_makespan = faulted.mean_makespan;
  result.makespans = std::move(faulted.makespans);
  result.server_busy = std::move(faulted.server_busy);
  result.trace = std::move(faulted.trace);
  return result;
}

}  // namespace wsflow
