#include "src/sim/simulator.h"

#include <algorithm>
#include <queue>

#include "src/common/logging.h"
#include "src/network/routing.h"
#include "src/workflow/validate.h"

namespace wsflow {

namespace {

enum class EventKind : uint8_t { kTokenArrive, kOpComplete };

struct Event {
  double time;
  uint64_t seq;  // FIFO tie-break for simultaneous events
  EventKind kind;
  OperationId op;
  OperationId sender;  // kTokenArrive: the message's sender (for tracing)
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

class SimRun {
 public:
  SimRun(const Workflow& w, const Network& n, const Mapping& m,
         const Router& router, const SimOptions& options, Rng* rng,
         Trace* trace)
      : w_(w),
        n_(n),
        m_(m),
        router_(router),
        options_(options),
        rng_(rng),
        trace_(trace),
        tokens_(w.num_operations(), 0),
        started_(w.num_operations(), false),
        completion_(w.num_operations(), -1),
        server_free_(n.num_servers(), 0),
        link_free_(n.num_links(), 0),
        busy_(n.num_servers(), 0) {}

  Result<double> Run(OperationId source, OperationId sink) {
    StartOperation(source, 0.0);
    while (!queue_.empty()) {
      Event e = queue_.top();
      queue_.pop();
      switch (e.kind) {
        case EventKind::kTokenArrive:
          WSFLOW_RETURN_IF_ERROR(HandleToken(e));
          break;
        case EventKind::kOpComplete:
          WSFLOW_RETURN_IF_ERROR(HandleComplete(e));
          break;
      }
    }
    if (completion_[sink.value] < 0) {
      return Status::Internal(
          "simulation drained without completing the sink operation");
    }
    return completion_[sink.value];
  }

  const std::vector<double>& busy() const { return busy_; }

 private:
  void Push(double time, EventKind kind, OperationId op, OperationId sender) {
    queue_.push(Event{time, seq_++, kind, op, sender});
  }

  void Record(double time, TraceEventType type, OperationId op,
              OperationId peer) {
    if (trace_ != nullptr) {
      trace_->Record(TraceEvent{time, type, op, peer, m_.ServerOf(op)});
    }
  }

  /// Begins executing `op` at `ready_time` (subject to server contention).
  void StartOperation(OperationId op, double ready_time) {
    WSFLOW_DCHECK(!started_[op.value]);
    started_[op.value] = true;
    ServerId s = m_.ServerOf(op);
    double start = ready_time;
    if (options_.server_contention) {
      start = std::max(start, server_free_[s.value]);
    }
    double proc = w_.operation(op).cycles() / n_.server(s).power_hz();
    if (options_.server_contention) {
      server_free_[s.value] = start + proc;
    }
    busy_[s.value] += proc;
    Record(start, TraceEventType::kOperationStart, op, OperationId());
    Push(start + proc, EventKind::kOpComplete, op, OperationId());
  }

  Status HandleToken(const Event& e) {
    Record(e.time, TraceEventType::kMessageDelivered, e.sender, e.op);
    if (started_[e.op.value]) {
      // OR-join semantics: the first successful arrival fired the join;
      // stragglers are ignored. (Every other node type receives exactly as
      // many tokens as its trigger needs.)
      return Status::OK();
    }
    ++tokens_[e.op.value];
    const Operation& op = w_.operation(e.op);
    size_t needed =
        op.type() == OperationType::kAndJoin ? w_.in_degree(e.op) : 1;
    if (tokens_[e.op.value] >= needed) {
      StartOperation(e.op, e.time);
    }
    return Status::OK();
  }

  Status HandleComplete(const Event& e) {
    completion_[e.op.value] = e.time;
    Record(e.time, TraceEventType::kOperationComplete, e.op, OperationId());
    const Operation& op = w_.operation(e.op);
    const auto& outs = w_.out_edges(e.op);
    if (outs.empty()) return Status::OK();

    if (op.type() == OperationType::kXorSplit) {
      // Probabilistically weighted pick of exactly one path.
      std::vector<double> weights;
      weights.reserve(outs.size());
      for (TransitionId t : outs) {
        weights.push_back(w_.transition(t).branch_weight);
      }
      size_t pick = rng_->NextDiscrete(weights);
      WSFLOW_RETURN_IF_ERROR(Send(outs[pick], e.time));
    } else {
      for (TransitionId t : outs) {
        WSFLOW_RETURN_IF_ERROR(Send(t, e.time));
      }
    }
    return Status::OK();
  }

  Status Send(TransitionId t, double time) {
    const Transition& edge = w_.transition(t);
    ServerId from = m_.ServerOf(edge.from);
    ServerId to = m_.ServerOf(edge.to);
    Record(time, TraceEventType::kMessageSent, edge.from, edge.to);
    if (from == to) {
      Push(time, EventKind::kTokenArrive, edge.to, edge.from);
      return Status::OK();
    }
    WSFLOW_ASSIGN_OR_RETURN(Route route, router_.FindRoute(from, to));
    double arrival = time;
    for (LinkId l : route.links) {
      const Link& link = n_.link(l);
      double transmit = edge.message_bits / link.speed_bps;
      double start = arrival;
      if (options_.bus_contention) {
        start = std::max(start, link_free_[l.value]);
        link_free_[l.value] = start + transmit;
      }
      arrival = start + transmit + link.propagation_s;
    }
    Push(arrival, EventKind::kTokenArrive, edge.to, edge.from);
    return Status::OK();
  }

  const Workflow& w_;
  const Network& n_;
  const Mapping& m_;
  const Router& router_;
  const SimOptions& options_;
  Rng* rng_;
  Trace* trace_;

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  uint64_t seq_ = 0;
  std::vector<size_t> tokens_;
  std::vector<bool> started_;
  std::vector<double> completion_;
  std::vector<double> server_free_;
  std::vector<double> link_free_;
  std::vector<double> busy_;
};

}  // namespace

Result<SimResult> SimulateWorkflow(const Workflow& workflow,
                                   const Network& network, const Mapping& m,
                                   const SimOptions& options) {
  WSFLOW_RETURN_IF_ERROR(ValidateAll(workflow));
  WSFLOW_RETURN_IF_ERROR(m.ValidateAgainst(workflow, network));
  if (options.num_runs == 0) {
    return Status::InvalidArgument("num_runs must be >= 1");
  }
  std::vector<OperationId> sources = workflow.Sources();
  std::vector<OperationId> sinks = workflow.Sinks();
  WSFLOW_CHECK_EQ(sources.size(), 1u);  // guaranteed by ValidateAll
  WSFLOW_CHECK_EQ(sinks.size(), 1u);

  Router router(network);
  Rng rng(options.seed);
  SimResult result;
  result.server_busy.assign(network.num_servers(), 0.0);
  for (size_t run = 0; run < options.num_runs; ++run) {
    Trace* trace =
        options.record_trace && run == 0 ? &result.trace : nullptr;
    SimRun sim(workflow, network, m, router, options, &rng, trace);
    WSFLOW_ASSIGN_OR_RETURN(double makespan, sim.Run(sources[0], sinks[0]));
    result.makespans.push_back(makespan);
    for (size_t s = 0; s < network.num_servers(); ++s) {
      result.server_busy[s] += sim.busy()[s];
    }
  }
  double sum = 0;
  for (double v : result.makespans) sum += v;
  result.mean_makespan = sum / static_cast<double>(result.makespans.size());
  for (double& b : result.server_busy) {
    b /= static_cast<double>(options.num_runs);
  }
  return result;
}

}  // namespace wsflow
