// wsflow: continuous-operation simulation — a stream of workflow instances.
//
// The paper's cost model prices a single workflow execution, but the
// motivating scenario (§2.1) is a service provider processing patient
// cases continuously — and its fairness argument ("a reasonable load
// scale-up is still possible") is fundamentally about sustained load. This
// module simulates a Poisson stream of workflow instances over one
// deployment with *shared* servers and bus: every server executes one
// operation at a time across all in-flight instances, and the bus carries
// one transfer at a time. Reported: per-instance latency statistics,
// sustained throughput, and server utilization — the quantities that show
// why balanced deployments win under load even when a packed deployment
// has the lower single-instance makespan.

#ifndef WSFLOW_SIM_STREAM_H_
#define WSFLOW_SIM_STREAM_H_

#include <vector>

#include "src/common/result.h"
#include "src/deploy/mapping.h"
#include "src/network/topology.h"
#include "src/workflow/workflow.h"

namespace wsflow {

struct StreamOptions {
  /// Number of workflow instances to push through the system.
  size_t num_instances = 200;
  /// Poisson arrival rate (instances per second). Must be positive.
  double arrival_rate = 10.0;
  /// Seed for arrivals and XOR branch draws.
  uint64_t seed = 0;
  /// Serialize operations per server (the point of the exercise; on by
  /// default, unlike the single-shot simulator).
  bool server_contention = true;
  /// Serialize transfers per link/bus.
  bool bus_contention = true;
};

struct StreamResult {
  /// Completion - arrival per instance, in arrival order.
  std::vector<double> latencies;
  double mean_latency = 0;
  double p95_latency = 0;
  double max_latency = 0;
  /// Instances completed per second: num_instances / last completion.
  double throughput = 0;
  /// Time the last instance completed.
  double total_time = 0;
  /// Busy seconds per server over the whole run (ServerId-indexed).
  std::vector<double> server_busy;
  /// server_busy / total_time.
  std::vector<double> server_utilization;
};

/// Simulates the stream. The workflow must be well-formed and the mapping
/// total.
Result<StreamResult> SimulateWorkflowStream(const Workflow& workflow,
                                            const Network& network,
                                            const Mapping& m,
                                            const StreamOptions& options);

}  // namespace wsflow

#endif  // WSFLOW_SIM_STREAM_H_
