#include "src/cost/execution_time.h"

#include <algorithm>

#include "src/common/logging.h"

namespace wsflow {

Result<double> LineExecutionTime(const CostModel& model, const Mapping& m) {
  const Workflow& w = model.workflow();
  WSFLOW_RETURN_IF_ERROR(m.ValidateAgainst(w, model.network()));
  WSFLOW_ASSIGN_OR_RETURN(std::vector<OperationId> order, w.LineOrder());
  double total = 0;
  for (OperationId op : order) total += model.Tproc(op, m);
  for (const Transition& t : w.transitions()) {
    WSFLOW_ASSIGN_OR_RETURN(double comm, model.Tcomm(t.id, m));
    total += comm;
  }
  return total;
}

namespace {

/// Recursive block evaluator. Returns the time from the first operation of
/// the block starting to the last finishing, including internal messages but
/// excluding the block's inbound/outbound messages (the enclosing sequence
/// accounts for those).
class BlockEvaluator {
 public:
  BlockEvaluator(const CostModel& model, const Mapping& m)
      : model_(model), m_(m) {}

  Result<double> Eval(const Block& block) {
    switch (block.kind) {
      case Block::Kind::kLeaf:
        return model_.Tproc(block.op, m_);
      case Block::Kind::kSequence:
        return EvalSequence(block);
      case Block::Kind::kBranch:
        return EvalBranch(block);
    }
    return Status::Internal("unknown block kind");
  }

 private:
  Result<double> Comm(OperationId from, OperationId to) {
    WSFLOW_ASSIGN_OR_RETURN(TransitionId t,
                            model_.workflow().FindTransition(from, to));
    return model_.Tcomm(t, m_);
  }

  Result<double> EvalSequence(const Block& seq) {
    double total = 0;
    for (size_t i = 0; i < seq.children.size(); ++i) {
      WSFLOW_ASSIGN_OR_RETURN(double t, Eval(seq.children[i]));
      total += t;
      if (i + 1 < seq.children.size()) {
        WSFLOW_ASSIGN_OR_RETURN(
            double comm,
            Comm(TailOperation(seq.children[i]),
                 HeadOperation(seq.children[i + 1])));
        total += comm;
      }
    }
    return total;
  }

  Result<double> EvalBranch(const Block& block) {
    double split_time = model_.Tproc(block.split, m_);
    double join_time = model_.Tproc(block.join, m_);

    std::vector<double> branch_times;
    branch_times.reserve(block.children.size());
    for (const Block& body : block.children) {
      if (body.kind == Block::Kind::kSequence && body.children.empty()) {
        // Empty branch: one direct split -> join message.
        WSFLOW_ASSIGN_OR_RETURN(double comm, Comm(block.split, block.join));
        branch_times.push_back(comm);
        continue;
      }
      WSFLOW_ASSIGN_OR_RETURN(double entry, Comm(block.split, HeadOperation(body)));
      WSFLOW_ASSIGN_OR_RETURN(double body_time, Eval(body));
      WSFLOW_ASSIGN_OR_RETURN(double exit, Comm(TailOperation(body), block.join));
      branch_times.push_back(entry + body_time + exit);
    }
    if (branch_times.empty()) {
      return Status::Internal("branch block with no branches");
    }

    double combined = 0;
    switch (block.branch_type) {
      case OperationType::kAndSplit:
        // Rendezvous at /AND: the slowest branch gates the join.
        combined = *std::max_element(branch_times.begin(), branch_times.end());
        break;
      case OperationType::kOrSplit:
        // One successful arrival at /OR suffices: the fastest branch gates.
        combined = *std::min_element(branch_times.begin(), branch_times.end());
        break;
      case OperationType::kXorSplit:
        // Probabilistically weighted pick: expected branch time.
        for (size_t i = 0; i < branch_times.size(); ++i) {
          combined += block.branch_probs[i] * branch_times[i];
        }
        break;
      default:
        return Status::Internal("branch block with non-split type");
    }
    return split_time + combined + join_time;
  }

  const CostModel& model_;
  const Mapping& m_;
};

}  // namespace

Result<double> GraphExecutionTime(const CostModel& model, const Block& root,
                                  const Mapping& m) {
  WSFLOW_RETURN_IF_ERROR(m.ValidateAgainst(model.workflow(), model.network()));
  return BlockEvaluator(model, m).Eval(root);
}

Result<double> GraphExecutionTime(const CostModel& model, const Mapping& m) {
  WSFLOW_ASSIGN_OR_RETURN(Block root, DecomposeBlocks(model.workflow()));
  return GraphExecutionTime(model, root, m);
}

}  // namespace wsflow
