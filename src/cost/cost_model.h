// wsflow: the paper's cost model (Table 1).
//
// All times in seconds, sizes in bits, powers in Hz:
//
//   T_proc(op)        = C(op) / P(Server(op))
//   T_trans(e, link)  = MsgSize(e) / Line_Speed(link)
//   T_comm(e)         = Sum over links of Path(Server(from), Server(to)) of
//                       (T_refl(link) + T_trans(e, link)); 0 if co-located
//   Load(s)           = Sum of p(op) * T_proc(op) over ops deployed on s
//   TimePenalty       = Sum over servers of |Load(s) - avg Load| / 2
//   T_execute         = execution time of the workflow (execution_time.h)
//   Combined          = w_e * T_execute + w_f * TimePenalty
//
// Loads are weighted by the operations' execution probabilities p(op)
// (1 for line workflows), matching the paper's amortized view for graph
// workflows (§3.4). TimePenalty translates fairness into time units: it is
// the total time servers deviate from the fair share; the /2 keeps a unit
// of load moved between two servers from being counted twice.

#ifndef WSFLOW_COST_COST_MODEL_H_
#define WSFLOW_COST_COST_MODEL_H_

#include <optional>
#include <vector>

#include "src/common/result.h"
#include "src/deploy/mapping.h"
#include "src/network/routing.h"
#include "src/network/server_mask.h"
#include "src/network/topology.h"
#include "src/workflow/blocks.h"
#include "src/workflow/probability.h"
#include "src/workflow/workflow.h"

namespace wsflow {

/// Weights of the double optimization objective. The paper's default is the
/// equally weighted sum.
struct CostOptions {
  double execution_weight = 0.5;
  double fairness_weight = 0.5;
};

/// The two antagonistic measures plus their weighted combination.
struct CostBreakdown {
  double execution_time = 0;  ///< T_execute in seconds.
  double time_penalty = 0;    ///< Fairness penalty in seconds.
  double combined = 0;        ///< Weighted sum under the CostOptions used.
};

/// Evaluates mappings of one workflow over one network. The workflow,
/// network and profile must outlive the model.
class CostModel {
 public:
  /// `profile` supplies execution probabilities; pass nullptr to use
  /// probability 1 everywhere (single-execution / line semantics).
  CostModel(const Workflow& workflow, const Network& network,
            const ExecutionProfile* profile = nullptr);

  const Workflow& workflow() const { return workflow_; }
  const Network& network() const { return network_; }
  const Router& router() const { return router_; }

  /// Execution probability of an operation under the active profile.
  double OperationProb(OperationId op) const;
  /// Execution probability of a transition under the active profile.
  double TransitionProb(TransitionId t) const;

  /// T_proc(op) under `m`; op must be assigned.
  double Tproc(OperationId op, const Mapping& m) const;

  /// T_proc of `op` if it were placed on `server`.
  double TprocOn(OperationId op, ServerId server) const;

  /// T_comm of transition `t` under `m`; both endpoints must be assigned.
  /// Fails when the hosting servers are disconnected.
  Result<double> Tcomm(TransitionId t, const Mapping& m) const;

  /// Probability-weighted T_comm: p(t) * Tcomm(t).
  Result<double> WeightedTcomm(TransitionId t, const Mapping& m) const;

  /// Probability-weighted load of `server`: sum of p(op) * T_proc(op).
  double Load(ServerId server, const Mapping& m) const;

  /// Loads of all servers, indexed by ServerId::value.
  std::vector<double> Loads(const Mapping& m) const;

  /// Sum over servers of |Load(s) - avg| / 2.
  double TimePenalty(const Mapping& m) const;

  /// Fairness penalty over the mask-alive servers only: the average and
  /// the deviations run over the survivors, matching the paper's "a server
  /// fails" reading of fairness. Equals TimePenalty(m) for a trivial mask.
  /// A sized mask must match the network's server count.
  double TimePenalty(const Mapping& m, const ServerMask& mask) const;

  /// True when the workflow is a simple path (cached; the evaluators pick
  /// the closed-form line formula over the block recursion in that case).
  bool IsLineWorkflow() const;

  /// The cached block decomposition of a graph workflow. Fails when the
  /// workflow is not well-formed. The pointer stays valid for the model's
  /// lifetime.
  Result<const Block*> BlockRoot() const;

  /// T_execute: line workflows use the closed form Sum T_proc + Sum T_comm;
  /// graph workflows use the recursive block evaluation (execution_time.h).
  /// The mapping must be total.
  Result<double> ExecutionTime(const Mapping& m) const;

  /// T_execute scored against the surviving subnetwork: every operation
  /// must sit on a mask-alive server and every cross-server message must
  /// route clear of the down servers. The full-network routes are reused
  /// (no rebuild) — a route through a down transit server *severs* the
  /// mapping and fails with FailedPrecondition. When intact, the value
  /// equals ExecutionTime(m) exactly: the surviving routes are unchanged.
  Result<double> ExecutionTime(const Mapping& m, const ServerMask& mask) const;

  /// Full evaluation under the given objective weights.
  Result<CostBreakdown> Evaluate(const Mapping& m,
                                 const CostOptions& options = {}) const;

  /// Full evaluation against the surviving subnetwork: masked execution
  /// time plus the survivor-only fairness penalty. Identical to the
  /// unmasked Evaluate for a trivial mask.
  Result<CostBreakdown> Evaluate(const Mapping& m, const CostOptions& options,
                                 const ServerMask& mask) const;

  /// The active execution probabilities rebuilt as a value: probability 1
  /// everywhere when the model was built without a profile. For helpers
  /// (failover seeding, repair) that need a WorkflowView over exactly the
  /// probabilities this model evaluates with.
  ExecutionProfile ProfileSnapshot() const;

  /// Eagerly fills every lazily cached structure: the router's all-pairs
  /// tables, the line/graph classification and (for graph workflows) the
  /// block decomposition. After a successful Warm the model is safe to
  /// share across threads read-only — concurrent Evaluate calls and
  /// IncrementalEvaluator binds no longer race on first-touch cache
  /// fills. Fails when the workflow is not well-formed.
  Status Warm() const;

 private:
  const Workflow& workflow_;
  const Network& network_;
  const ExecutionProfile* profile_;  // may be null (probability 1)
  Router router_;
  // Lazily cached structure shared by repeated evaluations of the same
  // workflow (the heuristics and samplers evaluate thousands of mappings).
  mutable std::optional<bool> is_line_;
  mutable std::optional<Block> root_;
};

}  // namespace wsflow

#endif  // WSFLOW_COST_COST_MODEL_H_
