#include "src/cost/cost_model.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/cost/execution_time.h"

namespace wsflow {

CostModel::CostModel(const Workflow& workflow, const Network& network,
                     const ExecutionProfile* profile)
    : workflow_(workflow),
      network_(network),
      profile_(profile),
      router_(network) {
  if (profile_ != nullptr) {
    WSFLOW_CHECK_EQ(profile_->op_prob.size(), workflow.num_operations());
    WSFLOW_CHECK_EQ(profile_->edge_prob.size(), workflow.num_transitions());
  }
}

double CostModel::OperationProb(OperationId op) const {
  return profile_ == nullptr ? 1.0 : profile_->OperationProb(op);
}

double CostModel::TransitionProb(TransitionId t) const {
  return profile_ == nullptr ? 1.0 : profile_->TransitionProb(t);
}

double CostModel::Tproc(OperationId op, const Mapping& m) const {
  ServerId s = m.ServerOf(op);
  WSFLOW_CHECK(s.valid());
  return TprocOn(op, s);
}

double CostModel::TprocOn(OperationId op, ServerId server) const {
  return workflow_.operation(op).cycles() / network_.server(server).power_hz();
}

Result<double> CostModel::Tcomm(TransitionId t, const Mapping& m) const {
  const Transition& edge = workflow_.transition(t);
  ServerId from = m.ServerOf(edge.from);
  ServerId to = m.ServerOf(edge.to);
  if (!from.valid() || !to.valid()) {
    return Status::FailedPrecondition(
        "Tcomm requires both transition endpoints assigned");
  }
  if (from == to) return 0.0;
  WSFLOW_ASSIGN_OR_RETURN(Route route, router_.FindRoute(from, to));
  return route.TotalPropagation(network_) +
         route.TransmissionTime(network_, edge.message_bits);
}

Result<double> CostModel::WeightedTcomm(TransitionId t,
                                        const Mapping& m) const {
  WSFLOW_ASSIGN_OR_RETURN(double comm, Tcomm(t, m));
  return TransitionProb(t) * comm;
}

double CostModel::Load(ServerId server, const Mapping& m) const {
  double load = 0;
  for (const Operation& op : workflow_.operations()) {
    if (m.ServerOf(op.id()) == server) {
      load += OperationProb(op.id()) * TprocOn(op.id(), server);
    }
  }
  return load;
}

std::vector<double> CostModel::Loads(const Mapping& m) const {
  std::vector<double> loads(network_.num_servers(), 0.0);
  for (const Operation& op : workflow_.operations()) {
    ServerId s = m.ServerOf(op.id());
    if (s.valid()) {
      loads[s.value] += OperationProb(op.id()) * TprocOn(op.id(), s);
    }
  }
  return loads;
}

double CostModel::TimePenalty(const Mapping& m) const {
  std::vector<double> loads = Loads(m);
  if (loads.empty()) return 0.0;
  double avg = 0;
  for (double l : loads) avg += l;
  avg /= static_cast<double>(loads.size());
  double penalty = 0;
  for (double l : loads) penalty += std::fabs(l - avg) / 2.0;
  return penalty;
}

double CostModel::TimePenalty(const Mapping& m, const ServerMask& mask) const {
  if (mask.trivial()) return TimePenalty(m);
  WSFLOW_CHECK_EQ(mask.size(), network_.num_servers());
  std::vector<double> loads = Loads(m);
  double avg = 0;
  size_t alive = 0;
  for (size_t s = 0; s < loads.size(); ++s) {
    if (!mask.alive(ServerId(static_cast<uint32_t>(s)))) continue;
    avg += loads[s];
    ++alive;
  }
  if (alive == 0) return 0.0;
  avg /= static_cast<double>(alive);
  double penalty = 0;
  for (size_t s = 0; s < loads.size(); ++s) {
    if (!mask.alive(ServerId(static_cast<uint32_t>(s)))) continue;
    penalty += std::fabs(loads[s] - avg) / 2.0;
  }
  return penalty;
}

bool CostModel::IsLineWorkflow() const {
  if (!is_line_.has_value()) is_line_ = workflow_.IsLine();
  return *is_line_;
}

Result<const Block*> CostModel::BlockRoot() const {
  if (!root_.has_value()) {
    WSFLOW_ASSIGN_OR_RETURN(Block root, DecomposeBlocks(workflow_));
    root_ = std::move(root);
  }
  return &*root_;
}

Status CostModel::Warm() const {
  router_.WarmAllPairs();
  if (!IsLineWorkflow()) {
    WSFLOW_RETURN_IF_ERROR(BlockRoot().status());
  }
  return Status::OK();
}

Result<double> CostModel::ExecutionTime(const Mapping& m) const {
  if (IsLineWorkflow()) {
    return LineExecutionTime(*this, m);
  }
  WSFLOW_ASSIGN_OR_RETURN(const Block* root, BlockRoot());
  return GraphExecutionTime(*this, *root, m);
}

Result<double> CostModel::ExecutionTime(const Mapping& m,
                                        const ServerMask& mask) const {
  if (mask.trivial()) return ExecutionTime(m);
  if (mask.size() != network_.num_servers()) {
    return Status::InvalidArgument(
        "server mask size does not match the network");
  }
  for (const Operation& op : workflow_.operations()) {
    ServerId s = m.ServerOf(op.id());
    if (s.valid() && !mask.alive(s)) {
      return Status::FailedPrecondition("operation '" + op.name() +
                                        "' is hosted on a down server");
    }
  }
  for (const Transition& t : workflow_.transitions()) {
    ServerId from = m.ServerOf(t.from);
    ServerId to = m.ServerOf(t.to);
    if (!from.valid() || !to.valid() || from == to) continue;
    WSFLOW_ASSIGN_OR_RETURN(Route route, router_.FindRoute(from, to));
    if (!RouteAvoidsDown(route, network_, from, to, mask)) {
      return Status::FailedPrecondition(
          "mapping routes a message through a down server");
    }
  }
  // Every route is clear of the down set, so the surviving subnetwork
  // carries the same link sequences: the unmasked value is exact.
  return ExecutionTime(m);
}

Result<CostBreakdown> CostModel::Evaluate(const Mapping& m,
                                          const CostOptions& options) const {
  WSFLOW_RETURN_IF_ERROR(m.ValidateAgainst(workflow_, network_));
  CostBreakdown out;
  WSFLOW_ASSIGN_OR_RETURN(out.execution_time, ExecutionTime(m));
  out.time_penalty = TimePenalty(m);
  out.combined = options.execution_weight * out.execution_time +
                 options.fairness_weight * out.time_penalty;
  return out;
}

Result<CostBreakdown> CostModel::Evaluate(const Mapping& m,
                                          const CostOptions& options,
                                          const ServerMask& mask) const {
  if (mask.trivial()) return Evaluate(m, options);
  WSFLOW_RETURN_IF_ERROR(m.ValidateAgainst(workflow_, network_));
  CostBreakdown out;
  WSFLOW_ASSIGN_OR_RETURN(out.execution_time, ExecutionTime(m, mask));
  out.time_penalty = TimePenalty(m, mask);
  out.combined = options.execution_weight * out.execution_time +
                 options.fairness_weight * out.time_penalty;
  return out;
}

ExecutionProfile CostModel::ProfileSnapshot() const {
  ExecutionProfile profile;
  profile.op_prob.resize(workflow_.num_operations());
  profile.edge_prob.resize(workflow_.num_transitions());
  for (size_t i = 0; i < workflow_.num_operations(); ++i) {
    profile.op_prob[i] = OperationProb(OperationId(static_cast<uint32_t>(i)));
  }
  for (size_t i = 0; i < workflow_.num_transitions(); ++i) {
    profile.edge_prob[i] =
        TransitionProb(TransitionId(static_cast<uint32_t>(i)));
  }
  return profile;
}

}  // namespace wsflow
