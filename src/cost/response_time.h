// wsflow: per-operation response times (paper §6 future work, implemented
// as an extension).
//
// Beyond the overall T_execute, a provider often cares when *individual*
// operations complete — e.g. the paper suggests bounding the response time
// of specific operations as part of the cost model. This module computes,
// for a total mapping, the (expected) completion time of every operation
// measured from workflow start:
//
//   * sequences accumulate processing and message time;
//   * AND joins start at the latest branch arrival, OR joins at the
//     earliest;
//   * inside an XOR branch, times are conditional on that branch being
//     taken; the XOR join's start is the probability-weighted expectation
//     over branches, mirroring the T_execute semantics.
//
// For deterministic workflows (no XOR) the sink's response time equals
// T_execute exactly; tests assert this and the simulator agreement.

#ifndef WSFLOW_COST_RESPONSE_TIME_H_
#define WSFLOW_COST_RESPONSE_TIME_H_

#include <vector>

#include "src/common/result.h"
#include "src/cost/cost_model.h"
#include "src/deploy/mapping.h"
#include "src/workflow/blocks.h"

namespace wsflow {

/// Completion time per operation (seconds from workflow start), indexed by
/// OperationId::value. XOR-arm entries are conditional on their branch.
using ResponseTimes = std::vector<double>;

/// Computes response times under `m`, which must be total. Fails when the
/// workflow is not well-formed.
Result<ResponseTimes> ComputeResponseTimes(const CostModel& model,
                                           const Mapping& m);

/// As above but reuses an existing block decomposition.
Result<ResponseTimes> ComputeResponseTimes(const CostModel& model,
                                           const Block& root,
                                           const Mapping& m);

}  // namespace wsflow

#endif  // WSFLOW_COST_RESPONSE_TIME_H_
