#include "src/cost/load_index.h"

#include <bit>
#include <cmath>

#include "src/common/logging.h"

namespace wsflow {

uint64_t LoadIndex::Priority(double load, uint32_t server) {
  // Normalize the zero sign so keys that compare equal hash equal; beyond
  // that the priority is a pure function of the key bits, which makes the
  // treap shape a pure function of the stored key set.
  if (load == 0.0) load = 0.0;
  uint64_t x = std::bit_cast<uint64_t>(load) +
               0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(server) + 1);
  // splitmix64 finalizer.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

bool LoadIndex::KeyLess(double load_a, uint32_t server_a,
                        const Node& b) const {
  if (load_a != b.load) return load_a < b.load;
  return server_a < b.server;
}

int LoadIndex::NewNode(double load, uint32_t server) {
  int index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& node = nodes_[index];
  node.load = load;
  node.server = server;
  node.priority = Priority(load, server);
  node.left = -1;
  node.right = -1;
  node.count = 1;
  node.sum = load;
  return index;
}

void LoadIndex::Pull(int t) {
  Node& node = nodes_[t];
  node.count = 1;
  node.sum = node.load;
  if (node.left >= 0) {
    node.count += nodes_[node.left].count;
    node.sum += nodes_[node.left].sum;
  }
  if (node.right >= 0) {
    node.count += nodes_[node.right].count;
    node.sum += nodes_[node.right].sum;
  }
}

void LoadIndex::Split(int t, double load, uint32_t server, int* lo, int* hi) {
  if (t < 0) {
    *lo = -1;
    *hi = -1;
    return;
  }
  Node& node = nodes_[t];
  const bool node_below = node.load != load ? node.load < load
                                            : node.server < server;
  if (node_below) {
    Split(node.right, load, server, &node.right, hi);
    *lo = t;
  } else {
    Split(node.left, load, server, lo, &node.left);
    *hi = t;
  }
  Pull(t);
}

int LoadIndex::Merge(int lo, int hi) {
  if (lo < 0) return hi;
  if (hi < 0) return lo;
  if (nodes_[lo].priority > nodes_[hi].priority) {
    nodes_[lo].right = Merge(nodes_[lo].right, hi);
    Pull(lo);
    return lo;
  }
  nodes_[hi].left = Merge(lo, nodes_[hi].left);
  Pull(hi);
  return hi;
}

int LoadIndex::InsertAt(int t, int node) {
  if (t < 0) return node;
  if (nodes_[node].priority > nodes_[t].priority) {
    Split(t, nodes_[node].load, nodes_[node].server, &nodes_[node].left,
          &nodes_[node].right);
    Pull(node);
    return node;
  }
  if (KeyLess(nodes_[node].load, nodes_[node].server, nodes_[t])) {
    nodes_[t].left = InsertAt(nodes_[t].left, node);
  } else {
    nodes_[t].right = InsertAt(nodes_[t].right, node);
  }
  Pull(t);
  return t;
}

int LoadIndex::RemoveAt(int t, double load, uint32_t server) {
  WSFLOW_CHECK(t >= 0) << "LoadIndex: removing a key that is not present";
  Node& node = nodes_[t];
  if (node.load == load && node.server == server) {
    int merged = Merge(node.left, node.right);
    free_.push_back(t);
    return merged;
  }
  if (KeyLess(load, server, node)) {
    node.left = RemoveAt(node.left, load, server);
  } else {
    node.right = RemoveAt(node.right, load, server);
  }
  Pull(t);
  return t;
}

void LoadIndex::Rebuild(std::span<const double> loads) {
  nodes_.clear();
  free_.clear();
  root_ = -1;
  nodes_.reserve(loads.size());
  for (size_t s = 0; s < loads.size(); ++s) {
    root_ = InsertAt(root_, NewNode(loads[s], static_cast<uint32_t>(s)));
  }
}

void LoadIndex::Rebuild(std::span<const double> loads,
                        std::span<const uint32_t> servers) {
  nodes_.clear();
  free_.clear();
  root_ = -1;
  nodes_.reserve(servers.size());
  for (uint32_t s : servers) {
    root_ = InsertAt(root_, NewNode(loads[s], s));
  }
}

void LoadIndex::Update(uint32_t server, double old_load, double new_load) {
  root_ = RemoveAt(root_, old_load, server);
  root_ = InsertAt(root_, NewNode(new_load, server));
}

void LoadIndex::BelowPrefix(double threshold, int64_t* count,
                            double* sum) const {
  // Keys are ordered by (load, server), so "load < threshold" selects a
  // key prefix and one root-to-leaf descent collects its aggregates.
  *count = 0;
  *sum = 0;
  int t = root_;
  while (t >= 0) {
    const Node& node = nodes_[t];
    if (node.load < threshold) {
      if (node.left >= 0) {
        *count += nodes_[node.left].count;
        *sum += nodes_[node.left].sum;
      }
      *count += 1;
      *sum += node.load;
      t = node.right;
    } else {
      t = node.left;
    }
  }
}

double LoadIndex::Penalty() const {
  if (root_ < 0) return 0.0;
  const Node& root = nodes_[root_];
  const double total = root.sum;
  const double n = static_cast<double>(root.count);
  const double avg = total / n;
  int64_t count_below = 0;
  double sum_below = 0;
  BelowPrefix(avg, &count_below, &sum_below);
  const double below = avg * static_cast<double>(count_below) - sum_below;
  const double above =
      (total - sum_below) - avg * (n - static_cast<double>(count_below));
  return (below + above) / 2.0;
}

double LoadIndex::PenaltyPatched(std::span<const uint32_t> servers,
                                 std::span<const double> stored,
                                 std::span<const double> current) const {
  if (root_ < 0) return 0.0;
  const Node& root = nodes_[root_];
  const double tree_total = root.sum;
  const double n = static_cast<double>(root.count);
  double total = tree_total;
  for (uint32_t s : servers) total += current[s] - stored[s];
  const double avg = total / n;
  int64_t count_below = 0;
  double sum_below = 0;
  BelowPrefix(avg, &count_below, &sum_below);
  // Absolute deviation of the snapshot the tree holds, then swap each
  // patched cell's contribution from its stored value to its current one.
  double abs_sum =
      (avg * static_cast<double>(count_below) - sum_below) +
      ((tree_total - sum_below) - avg * (n - static_cast<double>(count_below)));
  for (uint32_t s : servers) {
    abs_sum += std::fabs(current[s] - avg) - std::fabs(stored[s] - avg);
  }
  return abs_sum / 2.0;
}

}  // namespace wsflow
