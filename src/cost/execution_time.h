// wsflow: workflow execution-time evaluation T_execute.
//
// Line workflows (paper Table 1): every operation waits for its predecessor,
// so T_execute = Sum T_proc(O_i) + Sum T_comm(O_i, O_{i+1}).
//
// Graph workflows: evaluated recursively over the block tree:
//   * leaf           -> T_proc(op)
//   * sequence       -> sum of children + T_comm of the messages linking
//                       consecutive children
//   * AND block      -> T_proc(split) + max over branches + T_proc(join)
//                       (rendezvous: all branches must finish, paper §2.2a)
//   * OR block       -> T_proc(split) + min over branches + T_proc(join)
//                       (one successful path suffices, paper §2.2b)
//   * XOR block      -> T_proc(split) + expected branch time (probability-
//                       weighted pick, paper §2.2c) + T_proc(join)
// where a branch time includes its entry and exit messages. The XOR
// expectation makes T_execute the *expected* completion time over many
// workflow executions, consistent with the amortized view of §3.4.

#ifndef WSFLOW_COST_EXECUTION_TIME_H_
#define WSFLOW_COST_EXECUTION_TIME_H_

#include "src/common/result.h"
#include "src/cost/cost_model.h"
#include "src/deploy/mapping.h"
#include "src/workflow/blocks.h"

namespace wsflow {

/// T_execute for a line workflow; fails when the workflow is not a line or
/// the mapping is not total.
Result<double> LineExecutionTime(const CostModel& model, const Mapping& m);

/// T_execute for any well-formed workflow, given its block decomposition.
Result<double> GraphExecutionTime(const CostModel& model, const Block& root,
                                  const Mapping& m);

/// Convenience: decomposes the workflow and evaluates. Prefer the Block
/// overload in loops.
Result<double> GraphExecutionTime(const CostModel& model, const Mapping& m);

}  // namespace wsflow

#endif  // WSFLOW_COST_EXECUTION_TIME_H_
