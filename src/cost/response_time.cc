#include "src/cost/response_time.h"

#include <algorithm>

#include "src/common/logging.h"

namespace wsflow {

namespace {

class ResponseWalker {
 public:
  ResponseWalker(const CostModel& model, const Mapping& m,
                 ResponseTimes* out)
      : model_(model), m_(m), out_(out) {}

  /// Walks `block` starting at absolute time `start`; returns the time the
  /// block's last operation completes.
  Result<double> Walk(const Block& block, double start) {
    switch (block.kind) {
      case Block::Kind::kLeaf: {
        double done = start + model_.Tproc(block.op, m_);
        (*out_)[block.op.value] = done;
        return done;
      }
      case Block::Kind::kSequence: {
        double t = start;
        for (size_t i = 0; i < block.children.size(); ++i) {
          WSFLOW_ASSIGN_OR_RETURN(t, Walk(block.children[i], t));
          if (i + 1 < block.children.size()) {
            WSFLOW_ASSIGN_OR_RETURN(
                double comm, Comm(TailOperation(block.children[i]),
                                  HeadOperation(block.children[i + 1])));
            t += comm;
          }
        }
        return t;
      }
      case Block::Kind::kBranch:
        return WalkBranch(block, start);
    }
    return Status::Internal("unknown block kind");
  }

 private:
  Result<double> Comm(OperationId from, OperationId to) {
    WSFLOW_ASSIGN_OR_RETURN(TransitionId t,
                            model_.workflow().FindTransition(from, to));
    return model_.Tcomm(t, m_);
  }

  Result<double> WalkBranch(const Block& block, double start) {
    double split_done = start + model_.Tproc(block.split, m_);
    (*out_)[block.split.value] = split_done;

    std::vector<double> arrivals;
    arrivals.reserve(block.children.size());
    for (const Block& body : block.children) {
      if (body.kind == Block::Kind::kSequence && body.children.empty()) {
        WSFLOW_ASSIGN_OR_RETURN(double comm, Comm(block.split, block.join));
        arrivals.push_back(split_done + comm);
        continue;
      }
      WSFLOW_ASSIGN_OR_RETURN(double entry,
                              Comm(block.split, HeadOperation(body)));
      WSFLOW_ASSIGN_OR_RETURN(double body_done,
                              Walk(body, split_done + entry));
      WSFLOW_ASSIGN_OR_RETURN(double exit,
                              Comm(TailOperation(body), block.join));
      arrivals.push_back(body_done + exit);
    }
    WSFLOW_CHECK(!arrivals.empty());

    double join_start = 0;
    switch (block.branch_type) {
      case OperationType::kAndSplit:
        join_start = *std::max_element(arrivals.begin(), arrivals.end());
        break;
      case OperationType::kOrSplit:
        join_start = *std::min_element(arrivals.begin(), arrivals.end());
        break;
      case OperationType::kXorSplit:
        for (size_t i = 0; i < arrivals.size(); ++i) {
          join_start += block.branch_probs[i] * arrivals[i];
        }
        break;
      default:
        return Status::Internal("branch block with non-split type");
    }
    double join_done = join_start + model_.Tproc(block.join, m_);
    (*out_)[block.join.value] = join_done;
    return join_done;
  }

  const CostModel& model_;
  const Mapping& m_;
  ResponseTimes* out_;
};

}  // namespace

Result<ResponseTimes> ComputeResponseTimes(const CostModel& model,
                                           const Block& root,
                                           const Mapping& m) {
  WSFLOW_RETURN_IF_ERROR(m.ValidateAgainst(model.workflow(), model.network()));
  ResponseTimes times(model.workflow().num_operations(), 0.0);
  ResponseWalker walker(model, m, &times);
  WSFLOW_ASSIGN_OR_RETURN(double end, walker.Walk(root, 0.0));
  (void)end;
  return times;
}

Result<ResponseTimes> ComputeResponseTimes(const CostModel& model,
                                           const Mapping& m) {
  WSFLOW_ASSIGN_OR_RETURN(Block root, DecomposeBlocks(model.workflow()));
  return ComputeResponseTimes(model, root, m);
}

}  // namespace wsflow
