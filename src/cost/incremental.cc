#include "src/cost/incremental.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "src/common/logging.h"
#include "src/network/routing.h"

namespace wsflow {

namespace {

Status Disconnected() {
  return Status::FailedPrecondition(
      "mapping routes a message between disconnected servers");
}

}  // namespace

IncrementalEvaluator::IncrementalEvaluator(const CostModel& model,
                                           Mapping mapping,
                                           const CostOptions& options,
                                           const EvalTuning& tuning)
    : model_(&model),
      options_(options),
      tuning_(tuning),
      mapping_(std::move(mapping)) {
  // Running sums accumulate one rounding error per update; re-summing in
  // cold evaluation order every few thousand moves keeps the worst-case
  // deviation far below the 1e-9 the property suite (and the search tie
  // tolerances) rely on.
  if (tuning_.reanchor_interval == 0) tuning_.reanchor_interval = 1;
}

Result<IncrementalEvaluator> IncrementalEvaluator::Bind(
    const CostModel& model, Mapping initial, const CostOptions& options,
    const EvalTuning& tuning) {
  IncrementalEvaluator eval(model, std::move(initial), options, tuning);
  WSFLOW_RETURN_IF_ERROR(eval.ColdStart());
  return eval;
}

Status IncrementalEvaluator::Rebind(Mapping mapping) {
  Mapping previous = std::move(mapping_);
  mapping_ = std::move(mapping);
  Status st = ColdStart();
  if (!st.ok()) {
    // ColdStart validates before touching any state, so the caches still
    // describe the previous mapping; restore it and report the error.
    mapping_ = std::move(previous);
  }
  return st;
}

Status IncrementalEvaluator::ColdStart() {
  const Workflow& w = model_->workflow();
  const Network& n = model_->network();
  WSFLOW_RETURN_IF_ERROR(mapping_.ValidateAgainst(w, n));

  if (!std::isfinite(tuning_.load_scale) || tuning_.load_scale <= 0) {
    return Status::InvalidArgument("load_scale must be finite and > 0");
  }
  if (!tuning_.base_loads.empty()) {
    if (tuning_.base_loads.size() != n.num_servers()) {
      return Status::InvalidArgument(
          "base_loads size does not match the network");
    }
    for (double base : tuning_.base_loads) {
      if (!std::isfinite(base) || base < 0) {
        return Status::InvalidArgument(
            "base_loads entries must be finite and non-negative");
      }
    }
  }

  if (!tuning_.mask.trivial()) {
    if (tuning_.mask.size() != n.num_servers()) {
      return Status::InvalidArgument(
          "server mask size does not match the network");
    }
    for (const Operation& op : w.operations()) {
      if (!tuning_.mask.alive(mapping_.ServerOf(op.id()))) {
        return Status::FailedPrecondition("operation '" + op.name() +
                                          "' is hosted on a down server");
      }
    }
    if (alive_servers_.empty()) {
      for (uint32_t s = 0; s < n.num_servers(); ++s) {
        if (tuning_.mask.alive(ServerId(s))) alive_servers_.push_back(s);
      }
    }
  }

  if (pair_prop_.empty()) {
    model_->router().WarmAllPairs();
    WSFLOW_RETURN_IF_ERROR(BuildPairTable());
  }
  line_ = model_->IsLineWorkflow();
  if (!line_ && nodes_.empty()) {
    WSFLOW_ASSIGN_OR_RETURN(const Block* root, model_->BlockRoot());
    tproc_reader_.assign(w.num_operations(), -1);
    edge_consumer_.assign(w.num_transitions(), -1);
    int root_index = -1;
    WSFLOW_RETURN_IF_ERROR(FlattenBlocks(*root, -1, &root_index));
    WSFLOW_CHECK_EQ(root_index, 0);
  }

  tcomm_.resize(w.num_transitions());
  for (const Transition& t : w.transitions()) {
    tcomm_[t.id.value] = ComputeEdge(t.id);
  }
  loads_.assign(n.num_servers(), 0.0);
  Reanchor();  // loads_ and the line sums, freshly summed
  if (!line_) {
    dirty_.clear();
    for (size_t i = nodes_.size(); i-- > 0;) {
      nodes_[i].dirty = false;
      RecomputeNode(nodes_[i]);
    }
  }
  undo_.clear();
  ++counters_.full_evaluations;
  return Status::OK();
}

Status IncrementalEvaluator::BuildPairTable() {
  const Network& n = model_->network();
  const size_t N = n.num_servers();
  pair_prop_.assign(N * N, 0.0);
  pair_secs_per_bit_.assign(N * N, 0.0);
  pair_reachable_.assign(N * N, 1);
  for (uint32_t a = 0; a < N; ++a) {
    for (uint32_t b = 0; b < N; ++b) {
      if (a == b) continue;
      size_t idx = static_cast<size_t>(a) * N + b;
      Result<Route> route =
          model_->router().FindRoute(ServerId(a), ServerId(b));
      if (!route.ok()) {
        pair_reachable_[idx] = 0;
        continue;
      }
      pair_prop_[idx] = route->TotalPropagation(n);
      double secs_per_bit = 0;
      for (LinkId l : route->links) secs_per_bit += 1.0 / n.link(l).speed_bps;
      pair_secs_per_bit_[idx] = secs_per_bit;
    }
  }
  if (!tuning_.mask.trivial()) {
    // Sever every pair whose endpoints or transit servers are down. The
    // BFS tables above describe the full network and are kept as-is; the
    // mask is a filter pass, never a rebuild.
    for (uint32_t a = 0; a < N; ++a) {
      for (uint32_t b = 0; b < N; ++b) {
        if (a == b) continue;
        size_t idx = static_cast<size_t>(a) * N + b;
        if (!pair_reachable_[idx]) continue;
        if (!tuning_.mask.alive(ServerId(a)) ||
            !tuning_.mask.alive(ServerId(b))) {
          pair_reachable_[idx] = 0;
          continue;
        }
        Result<Route> route =
            model_->router().FindRoute(ServerId(a), ServerId(b));
        WSFLOW_CHECK(route.ok());  // reachable above, router is warm
        if (!RouteAvoidsDown(*route, n, ServerId(a), ServerId(b),
                             tuning_.mask)) {
          pair_reachable_[idx] = 0;
        }
      }
    }
  }
  return Status::OK();
}

Status IncrementalEvaluator::FlattenBlocks(const Block& block, int parent,
                                           int* out_index) {
  const Workflow& w = model_->workflow();
  int index = static_cast<int>(nodes_.size());
  *out_index = index;
  nodes_.push_back(Node{});
  nodes_[index].block = &block;
  nodes_[index].parent = parent;
  switch (block.kind) {
    case Block::Kind::kLeaf:
      tproc_reader_[block.op.value] = index;
      break;
    case Block::Kind::kSequence: {
      std::vector<int> children;
      children.reserve(block.children.size());
      for (const Block& child : block.children) {
        int child_index = -1;
        WSFLOW_RETURN_IF_ERROR(FlattenBlocks(child, index, &child_index));
        children.push_back(child_index);
      }
      std::vector<TransitionId> seq_edges;
      for (size_t i = 0; i + 1 < block.children.size(); ++i) {
        WSFLOW_ASSIGN_OR_RETURN(
            TransitionId t,
            w.FindTransition(TailOperation(block.children[i]),
                             HeadOperation(block.children[i + 1])));
        edge_consumer_[t.value] = index;
        seq_edges.push_back(t);
      }
      nodes_[index].children = std::move(children);
      nodes_[index].seq_edges = std::move(seq_edges);
      break;
    }
    case Block::Kind::kBranch: {
      tproc_reader_[block.split.value] = index;
      tproc_reader_[block.join.value] = index;
      std::vector<Arm> arms;
      arms.reserve(block.children.size());
      for (const Block& body : block.children) {
        Arm arm;
        if (body.kind == Block::Kind::kSequence && body.children.empty()) {
          WSFLOW_ASSIGN_OR_RETURN(TransitionId t,
                                  w.FindTransition(block.split, block.join));
          edge_consumer_[t.value] = index;
          arm.direct = t;
        } else {
          WSFLOW_ASSIGN_OR_RETURN(
              TransitionId entry,
              w.FindTransition(block.split, HeadOperation(body)));
          WSFLOW_ASSIGN_OR_RETURN(
              TransitionId exit,
              w.FindTransition(TailOperation(body), block.join));
          edge_consumer_[entry.value] = index;
          edge_consumer_[exit.value] = index;
          arm.entry = entry;
          arm.exit = exit;
          WSFLOW_RETURN_IF_ERROR(FlattenBlocks(body, index, &arm.node));
        }
        arms.push_back(arm);
      }
      nodes_[index].arms = std::move(arms);
      break;
    }
  }
  return Status::OK();
}

Status IncrementalEvaluator::CheckMove(OperationId op, ServerId server) const {
  if (op.value >= mapping_.num_operations()) {
    return Status::InvalidArgument("operation not in the bound workflow");
  }
  if (!model_->network().Contains(server)) {
    return Status::InvalidArgument("server not in the bound network");
  }
  if (!tuning_.mask.alive(server)) {
    return Status::FailedPrecondition(
        "server is down under the bound server mask");
  }
  return Status::OK();
}

Status IncrementalEvaluator::Apply(OperationId op, ServerId server) {
  WSFLOW_RETURN_IF_ERROR(CheckMove(op, server));
  undo_.push_back(
      UndoRecord{op, mapping_.ServerOf(op), OperationId(), ServerId()});
  MoveInternal(op, server);
  return Status::OK();
}

Status IncrementalEvaluator::Move(OperationId op, ServerId server) {
  WSFLOW_RETURN_IF_ERROR(CheckMove(op, server));
  MoveInternal(op, server);
  return Status::OK();
}

Status IncrementalEvaluator::Swap(OperationId a, OperationId b) {
  if (a.value >= mapping_.num_operations() ||
      b.value >= mapping_.num_operations()) {
    return Status::InvalidArgument("operation not in the bound workflow");
  }
  ServerId sa = mapping_.ServerOf(a);
  ServerId sb = mapping_.ServerOf(b);
  undo_.push_back(UndoRecord{a, sa, b, sb});
  MoveInternal(a, sb);
  MoveInternal(b, sa);
  return Status::OK();
}

Status IncrementalEvaluator::Undo() {
  if (undo_.empty()) {
    return Status::FailedPrecondition("nothing to undo");
  }
  UndoRecord record = undo_.back();
  undo_.pop_back();
  if (record.b.valid()) MoveInternal(record.b, record.b_old);
  MoveInternal(record.a, record.a_old);
  return Status::OK();
}

void IncrementalEvaluator::SetLoad(uint32_t server, double value) {
  loads_[server] = value;
  if (!tuning_.use_load_index) return;
  if (load_dirty_[server]) {
    if (value == index_value_[server]) {
      // The cell came back to the tree's snapshot (a batch restore, or an
      // undo that cancels exactly): no patch needed after all.
      load_dirty_[server] = 0;
      for (size_t i = 0; i < dirty_loads_.size(); ++i) {
        if (dirty_loads_[i] == server) {
          dirty_loads_[i] = dirty_loads_.back();
          dirty_loads_.pop_back();
          break;
        }
      }
    }
    return;
  }
  if (value == index_value_[server]) return;
  load_dirty_[server] = 1;
  dirty_loads_.push_back(server);
  if (dirty_loads_.size() > kMaxPendingLoads) FlushLoadIndex();
}

void IncrementalEvaluator::FlushLoadIndex() {
  // Flush order is irrelevant to the result: the tree shape is a pure
  // function of the final key set.
  for (uint32_t s : dirty_loads_) {
    load_index_.Update(s, index_value_[s], loads_[s]);
    index_value_[s] = loads_[s];
    load_dirty_[s] = 0;
  }
  dirty_loads_.clear();
}

void IncrementalEvaluator::MoveInternal(OperationId op, ServerId to) {
  ServerId from = mapping_.ServerOf(op);
  if (from == to) return;
  ++moves_since_anchor_;
  double prob = LoadProb(op);
  double tproc_from = model_->TprocOn(op, from);
  double tproc_to = model_->TprocOn(op, to);
  SetLoad(from.value, loads_[from.value] - prob * tproc_from);
  SetLoad(to.value, loads_[to.value] + prob * tproc_to);
  mapping_.Assign(op, to);
  if (line_) {
    line_exec_ += tproc_to - tproc_from;
  } else if (tproc_reader_[op.value] >= 0) {
    MarkDirty(tproc_reader_[op.value]);
  }
  const Workflow& w = model_->workflow();
  for (TransitionId t : w.in_edges(op)) RefreshEdge(t);
  for (TransitionId t : w.out_edges(op)) RefreshEdge(t);
}

IncrementalEvaluator::EdgeCache IncrementalEvaluator::ComputeEdge(
    TransitionId t) const {
  const Transition& edge = model_->workflow().transition(t);
  ServerId from = mapping_.ServerOf(edge.from);
  ServerId to = mapping_.ServerOf(edge.to);
  if (from == to) return EdgeCache{0.0, true};
  size_t idx = static_cast<size_t>(from.value) *
                   model_->network().num_servers() +
               to.value;
  if (!pair_reachable_[idx]) return EdgeCache{0.0, false};
  return EdgeCache{
      pair_prop_[idx] + edge.message_bits * pair_secs_per_bit_[idx], true};
}

void IncrementalEvaluator::RefreshEdge(TransitionId t) {
  EdgeCache next = ComputeEdge(t);
  EdgeCache& current = tcomm_[t.value];
  if (line_) {
    line_exec_ +=
        (next.ok ? next.value : 0.0) - (current.ok ? current.value : 0.0);
    if (!next.ok && current.ok) ++bad_edges_;
    if (next.ok && !current.ok) --bad_edges_;
  } else if (edge_consumer_[t.value] >= 0) {
    MarkDirty(edge_consumer_[t.value]);
  }
  current = next;
}

void IncrementalEvaluator::MarkDirty(int node) {
  while (node >= 0 && !nodes_[node].dirty) {
    nodes_[node].dirty = true;
    dirty_.push_back(node);
    node = nodes_[node].parent;
  }
}

void IncrementalEvaluator::Flush() {
  if (dirty_.empty()) return;
  // Parents precede children in index order, so a descending sweep
  // recomputes every dirty child before the parent that reads it.
  std::sort(dirty_.begin(), dirty_.end(), std::greater<int>());
  for (int index : dirty_) {
    RecomputeNode(nodes_[index]);
    nodes_[index].dirty = false;
  }
  dirty_.clear();
}

double IncrementalEvaluator::EdgeContribution(TransitionId t,
                                              bool* ok) const {
  const EdgeCache& cache = tcomm_[t.value];
  if (!cache.ok) {
    *ok = false;
    return 0.0;
  }
  return cache.value;
}

void IncrementalEvaluator::RecomputeNode(Node& node) {
  const Block& block = *node.block;
  node.ok = true;
  switch (block.kind) {
    case Block::Kind::kLeaf:
      node.value = TprocHere(block.op);
      return;
    case Block::Kind::kSequence: {
      double total = 0;
      for (int child : node.children) {
        total += nodes_[child].value;
        node.ok = node.ok && nodes_[child].ok;
      }
      for (TransitionId t : node.seq_edges) {
        total += EdgeContribution(t, &node.ok);
      }
      node.value = total;
      return;
    }
    case Block::Kind::kBranch: {
      double combined = 0;
      bool first = true;
      for (size_t i = 0; i < node.arms.size(); ++i) {
        const Arm& arm = node.arms[i];
        double arm_time;
        if (arm.node < 0) {
          arm_time = EdgeContribution(arm.direct, &node.ok);
        } else {
          arm_time = EdgeContribution(arm.entry, &node.ok) +
                     nodes_[arm.node].value +
                     EdgeContribution(arm.exit, &node.ok);
          node.ok = node.ok && nodes_[arm.node].ok;
        }
        switch (block.branch_type) {
          case OperationType::kAndSplit:
            combined = first ? arm_time : std::max(combined, arm_time);
            break;
          case OperationType::kOrSplit:
            combined = first ? arm_time : std::min(combined, arm_time);
            break;
          case OperationType::kXorSplit:
            combined += block.branch_probs[i] * arm_time;
            break;
          default:
            // DecomposeBlocks only emits split-typed branch blocks.
            WSFLOW_CHECK(false) << "branch block with non-split type";
        }
        first = false;
      }
      node.value =
          TprocHere(block.split) + combined + TprocHere(block.join);
      return;
    }
  }
}

void IncrementalEvaluator::Reanchor() {
  moves_since_anchor_ = 0;
  const Workflow& w = model_->workflow();
  if (tuning_.base_loads.empty()) {
    std::fill(loads_.begin(), loads_.end(), 0.0);
  } else {
    loads_.assign(tuning_.base_loads.begin(), tuning_.base_loads.end());
  }
  for (const Operation& op : w.operations()) {
    ServerId s = mapping_.ServerOf(op.id());
    loads_[s.value] += LoadProb(op.id()) * model_->TprocOn(op.id(), s);
  }
  // Rebuilding from the freshly summed cells resets any drift between the
  // index's tree-order total and the cold-order loads, so the fast
  // penalty re-agrees with the O(N) pass at every re-anchor point. Under a
  // non-trivial mask the tree indexes the survivor cells only — a fresh
  // per-mask-epoch treap whose Penalty() is exactly the masked statistic.
  if (tuning_.use_load_index) {
    if (tuning_.mask.trivial()) {
      load_index_.Rebuild(loads_);
    } else {
      load_index_.Rebuild(loads_, alive_servers_);
    }
    index_value_.assign(loads_.begin(), loads_.end());
    load_dirty_.assign(loads_.size(), 0);
    dirty_loads_.clear();
  }
  if (line_) {
    line_exec_ = 0;
    bad_edges_ = 0;
    for (const Operation& op : w.operations()) {
      line_exec_ += TprocHere(op.id());
    }
    for (const Transition& t : w.transitions()) {
      const EdgeCache& cache = tcomm_[t.id.value];
      if (cache.ok) {
        line_exec_ += cache.value;
      } else {
        ++bad_edges_;
      }
    }
  }
}

Result<double> IncrementalEvaluator::ExecutionTime() {
  if (moves_since_anchor_ >= tuning_.reanchor_interval) Reanchor();
  if (line_) {
    if (bad_edges_ > 0) return Disconnected();
    return line_exec_;
  }
  Flush();
  if (!nodes_[0].ok) return Disconnected();
  return nodes_[0].value;
}

double IncrementalEvaluator::TimePenalty() const {
  if (loads_.empty()) return 0.0;
  if (!tuning_.mask.trivial() && !tuning_.use_load_index) {
    // Survivor-only fairness: average and deviations over the alive cells.
    ++counters_.penalty_full;
    double avg = 0;
    for (uint32_t s : alive_servers_) avg += loads_[s];
    avg /= static_cast<double>(alive_servers_.size());
    double penalty = 0;
    for (uint32_t s : alive_servers_) {
      penalty += std::fabs(loads_[s] - avg) / 2.0;
    }
    return penalty;
  }
  if (tuning_.use_load_index) {
    // With a mask the tree was rebuilt over the survivor cells (bind /
    // re-anchor), so the same descent answers the masked statistic; dirty
    // cells are always alive (moves to down servers are rejected).
    ++counters_.penalty_fast;
    if (dirty_loads_.empty()) return load_index_.Penalty();
    return load_index_.PenaltyPatched(dirty_loads_, index_value_, loads_);
  }
  ++counters_.penalty_full;
  double avg = 0;
  for (double load : loads_) avg += load;
  avg /= static_cast<double>(loads_.size());
  double penalty = 0;
  for (double load : loads_) penalty += std::fabs(load - avg) / 2.0;
  return penalty;
}

Result<CostBreakdown> IncrementalEvaluator::Evaluate() {
  ++counters_.delta_evaluations;
  WSFLOW_ASSIGN_OR_RETURN(double exec, ExecutionTime());
  CostBreakdown out;
  out.execution_time = exec;
  out.time_penalty = TimePenalty();
  out.combined = options_.execution_weight * out.execution_time +
                 options_.fairness_weight * out.time_penalty;
  return out;
}

Result<double> IncrementalEvaluator::Combined() {
  WSFLOW_ASSIGN_OR_RETURN(CostBreakdown breakdown, Evaluate());
  return breakdown.combined;
}

void IncrementalEvaluator::PrepareBatchBase() {
  if (moves_since_anchor_ >= tuning_.reanchor_interval) Reanchor();
  if (!line_) Flush();
  // Fold pending cells in up front so every candidate's penalty query
  // patches only the two cells that candidate mutates.
  if (tuning_.use_load_index) FlushLoadIndex();
}

void IncrementalEvaluator::CollectOpEdges(OperationId op) {
  // May append an edge another CollectOpEdges call already added (a swap of
  // adjacent operations shares their connecting transition): the duplicate
  // is intentional, so the refresh replay touches it once per move exactly
  // like Swap does. Saves happen before any mutation, so duplicate save
  // slots hold the same original value and restore order cannot matter.
  const Workflow& w = model_->workflow();
  for (TransitionId t : w.in_edges(op)) batch_edges_.push_back(t);
  for (TransitionId t : w.out_edges(op)) batch_edges_.push_back(t);
}

void IncrementalEvaluator::SaveBatchEdges() {
  batch_saved_edges_.clear();
  for (TransitionId t : batch_edges_) {
    batch_saved_edges_.push_back(tcomm_[t.value]);
  }
}

void IncrementalEvaluator::BuildBatchPath(std::span<const OperationId> ops) {
  batch_path_.clear();
  batch_saved_nodes_.clear();
  if (line_) return;
  // Reuse the dirty-marking machinery to take the ancestor closure, then
  // freeze it: the same path serves every candidate of the batch.
  for (OperationId op : ops) {
    if (tproc_reader_[op.value] >= 0) MarkDirty(tproc_reader_[op.value]);
  }
  for (TransitionId t : batch_edges_) {
    if (edge_consumer_[t.value] >= 0) MarkDirty(edge_consumer_[t.value]);
  }
  std::sort(dirty_.begin(), dirty_.end(), std::greater<int>());
  for (int index : dirty_) {
    nodes_[index].dirty = false;
    batch_path_.push_back(index);
    batch_saved_nodes_.push_back(
        NodeSnapshot{nodes_[index].value, nodes_[index].ok});
  }
  dirty_.clear();
}

void IncrementalEvaluator::RestoreBatchState() {
  for (size_t i = 0; i < batch_edges_.size(); ++i) {
    tcomm_[batch_edges_[i].value] = batch_saved_edges_[i];
  }
  for (size_t i = 0; i < batch_path_.size(); ++i) {
    Node& node = nodes_[batch_path_[i]];
    node.value = batch_saved_nodes_[i].value;
    node.ok = batch_saved_nodes_[i].ok;
  }
}

double IncrementalEvaluator::ScoreProvisionalGraph() {
  for (int index : batch_path_) {
    RecomputeNode(nodes_[index]);
  }
  return CombineScore(nodes_[0].value, nodes_[0].ok);
}

double IncrementalEvaluator::CombineScore(double exec, bool ok) const {
  if (!ok) return std::numeric_limits<double>::infinity();
  return options_.execution_weight * exec +
         options_.fairness_weight * TimePenalty();
}

void IncrementalEvaluator::BeginFanMemo(size_t slots) {
  if (!tuning_.use_edge_memo) return;
  const size_t need = slots * model_->network().num_servers();
  if (fan_memo_.size() < need) {
    fan_memo_.resize(need);
    fan_memo_epoch_.resize(need, 0);
  }
  ++memo_epoch_;
  if (memo_epoch_ == 0) {
    // Epoch counter wrapped: flush so a stale entry cannot masquerade as
    // current. Entries start at 0, so epoch 0 itself is never valid.
    std::fill(fan_memo_epoch_.begin(), fan_memo_epoch_.end(), 0u);
    memo_epoch_ = 1;
  }
}

IncrementalEvaluator::EdgeCache IncrementalEvaluator::MemoizedEdge(
    size_t slot, TransitionId t, ServerId dest) {
  if (!tuning_.use_edge_memo) return ComputeEdge(t);
  const size_t idx = slot * model_->network().num_servers() + dest.value;
  if (fan_memo_epoch_[idx] == memo_epoch_) {
    ++counters_.edge_memo_hits;
    return fan_memo_[idx];
  }
  ++counters_.edge_memo_misses;
  const EdgeCache computed = ComputeEdge(t);
  fan_memo_epoch_[idx] = memo_epoch_;
  fan_memo_[idx] = computed;
  return computed;
}

Status IncrementalEvaluator::ScoreMoves(OperationId op,
                                        std::span<const ServerId> servers,
                                        std::span<double> costs) {
  if (servers.size() != costs.size()) {
    return Status::InvalidArgument(
        "ScoreMoves needs one cost slot per candidate server");
  }
  if (op.value >= mapping_.num_operations()) {
    return Status::InvalidArgument("operation not in the bound workflow");
  }
  for (ServerId s : servers) {
    if (!model_->network().Contains(s)) {
      return Status::InvalidArgument("server not in the bound network");
    }
  }
  if (servers.empty()) return Status::OK();
  PrepareBatchBase();

  const ServerId from = mapping_.ServerOf(op);
  const double prob = LoadProb(op);
  const double tproc_from = model_->TprocOn(op, from);

  batch_edges_.clear();
  CollectOpEdges(op);
  SaveBatchEdges();
  const OperationId moved[] = {op};
  BuildBatchPath(moved);
  BeginFanMemo(batch_edges_.size());

  const double base_line_exec = line_exec_;
  const size_t base_bad_edges = bad_edges_;
  const double load_from_base = loads_[from.value];

  for (size_t i = 0; i < servers.size(); ++i) {
    const ServerId to = servers[i];
    if (!tuning_.mask.alive(to)) {
      // A down landing server scores like a disconnected state: the
      // candidate is unusable, not an error (Apply would reject it).
      costs[i] = std::numeric_limits<double>::infinity();
      ++counters_.delta_evaluations;
      continue;
    }
    const double tproc_to = model_->TprocOn(op, to);
    mapping_.Assign(op, to);
    const double load_to_base = loads_[to.value];
    if (to != from) {
      // Mirror MoveInternal's arithmetic exactly so batch scores agree
      // bit-for-bit with the Apply round-trip.
      SetLoad(from.value, load_from_base - prob * tproc_from);
      SetLoad(to.value, load_to_base + prob * tproc_to);
    }
    if (line_) {
      double exec = base_line_exec;
      size_t bad = base_bad_edges;
      if (to != from) exec += tproc_to - tproc_from;
      for (size_t e = 0; e < batch_edges_.size(); ++e) {
        const EdgeCache next = MemoizedEdge(e, batch_edges_[e], to);
        const EdgeCache& prev = batch_saved_edges_[e];
        exec += (next.ok ? next.value : 0.0) - (prev.ok ? prev.value : 0.0);
        if (!next.ok && prev.ok) ++bad;
        if (next.ok && !prev.ok) --bad;
      }
      costs[i] = CombineScore(exec, bad == 0);
    } else {
      for (size_t e = 0; e < batch_edges_.size(); ++e) {
        tcomm_[batch_edges_[e].value] =
            MemoizedEdge(e, batch_edges_[e], to);
      }
      costs[i] = ScoreProvisionalGraph();
    }
    ++counters_.delta_evaluations;
    if (to != from) {
      SetLoad(from.value, load_from_base);
      SetLoad(to.value, load_to_base);
    }
  }
  mapping_.Assign(op, from);
  RestoreBatchState();
  return Status::OK();
}

Status IncrementalEvaluator::ScoreSwaps(OperationId a,
                                        std::span<const OperationId> partners,
                                        std::span<double> costs) {
  if (partners.size() != costs.size()) {
    return Status::InvalidArgument(
        "ScoreSwaps needs one cost slot per partner");
  }
  if (a.value >= mapping_.num_operations()) {
    return Status::InvalidArgument("operation not in the bound workflow");
  }
  for (OperationId b : partners) {
    if (b.value >= mapping_.num_operations()) {
      return Status::InvalidArgument("operation not in the bound workflow");
    }
  }
  if (partners.empty()) return Status::OK();
  PrepareBatchBase();

  const double base_line_exec = line_exec_;
  const size_t base_bad_edges = bad_edges_;
  const ServerId sa = mapping_.ServerOf(a);
  const double prob_a = LoadProb(a);

  // `a`'s edge slots are shared by every partner, so the per-fan memo can
  // serve stage-1 T_comm terms across partners hosted on the same server.
  // Stage-2 terms (the partner's own edges) are never memoized: there `a`
  // sits displaced on the partner's server, so the "other endpoints at
  // base" precondition of the memo key does not hold.
  batch_edges_.clear();
  CollectOpEdges(a);
  const size_t a_edge_count = batch_edges_.size();
  BeginFanMemo(a_edge_count);

  for (size_t i = 0; i < partners.size(); ++i) {
    const OperationId b = partners[i];
    const ServerId sb = mapping_.ServerOf(b);
    if (b == a || sb == sa) {
      // The swap is a no-op; score the working mapping as-is.
      costs[i] = CombineScore(line_ ? base_line_exec : nodes_[0].value,
                              line_ ? base_bad_edges == 0 : nodes_[0].ok);
      ++counters_.delta_evaluations;
      continue;
    }
    const double prob_b = LoadProb(b);
    batch_edges_.resize(a_edge_count);
    CollectOpEdges(b);
    SaveBatchEdges();
    const OperationId swapped[] = {a, b};
    BuildBatchPath(swapped);

    const double load_a_base = loads_[sa.value];
    const double load_b_base = loads_[sb.value];
    double exec = base_line_exec;
    size_t bad = base_bad_edges;

    // Replay Swap's two MoveInternal calls in order: a -> sb first (b still
    // on sb), then b -> sa, refreshing each op's edges against the caches
    // as they stood at that point. This keeps the running-sum arithmetic
    // bit-identical to the round-trip.
    mapping_.Assign(a, sb);
    SetLoad(sa.value, loads_[sa.value] - prob_a * model_->TprocOn(a, sa));
    SetLoad(sb.value, loads_[sb.value] + prob_a * model_->TprocOn(a, sb));
    if (line_) exec += model_->TprocOn(a, sb) - model_->TprocOn(a, sa);
    for (size_t e = 0; e < a_edge_count; ++e) {
      const TransitionId t = batch_edges_[e];
      const EdgeCache next = MemoizedEdge(e, t, sb);
      const EdgeCache& prev = tcomm_[t.value];
      if (line_) {
        exec += (next.ok ? next.value : 0.0) - (prev.ok ? prev.value : 0.0);
        if (!next.ok && prev.ok) ++bad;
        if (next.ok && !prev.ok) --bad;
      }
      tcomm_[t.value] = next;
    }
    mapping_.Assign(b, sa);
    SetLoad(sb.value, loads_[sb.value] - prob_b * model_->TprocOn(b, sb));
    SetLoad(sa.value, loads_[sa.value] + prob_b * model_->TprocOn(b, sa));
    if (line_) exec += model_->TprocOn(b, sa) - model_->TprocOn(b, sb);
    for (size_t e = a_edge_count; e < batch_edges_.size(); ++e) {
      const TransitionId t = batch_edges_[e];
      const EdgeCache next = ComputeEdge(t);
      const EdgeCache& prev = tcomm_[t.value];
      if (line_) {
        exec += (next.ok ? next.value : 0.0) - (prev.ok ? prev.value : 0.0);
        if (!next.ok && prev.ok) ++bad;
        if (next.ok && !prev.ok) --bad;
      }
      tcomm_[t.value] = next;
    }

    costs[i] = line_ ? CombineScore(exec, bad == 0) : ScoreProvisionalGraph();
    ++counters_.delta_evaluations;

    mapping_.Assign(a, sa);
    mapping_.Assign(b, sb);
    SetLoad(sa.value, load_a_base);
    SetLoad(sb.value, load_b_base);
    RestoreBatchState();
  }
  return Status::OK();
}

}  // namespace wsflow
