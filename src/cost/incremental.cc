#include "src/cost/incremental.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "src/common/logging.h"
#include "src/network/routing.h"

namespace wsflow {

namespace {

Status Disconnected() {
  return Status::FailedPrecondition(
      "mapping routes a message between disconnected servers");
}

}  // namespace

IncrementalEvaluator::IncrementalEvaluator(const CostModel& model,
                                           Mapping mapping,
                                           const CostOptions& options,
                                           const EvalTuning& tuning)
    : model_(&model),
      options_(options),
      tuning_(tuning),
      mapping_(std::move(mapping)) {
  // Running sums accumulate one rounding error per update; re-summing in
  // cold evaluation order every few thousand moves keeps the worst-case
  // deviation far below the 1e-9 the property suite (and the search tie
  // tolerances) rely on.
  if (tuning_.reanchor_interval == 0) tuning_.reanchor_interval = 1;
}

Result<IncrementalEvaluator> IncrementalEvaluator::Bind(
    const CostModel& model, Mapping initial, const CostOptions& options,
    const EvalTuning& tuning) {
  IncrementalEvaluator eval(model, std::move(initial), options, tuning);
  WSFLOW_RETURN_IF_ERROR(eval.ColdStart());
  return eval;
}

Status IncrementalEvaluator::Rebind(Mapping mapping) {
  Mapping previous = std::move(mapping_);
  mapping_ = std::move(mapping);
  Status st = ColdStart();
  if (!st.ok()) {
    // ColdStart validates before touching any state, so the caches still
    // describe the previous mapping; restore it and report the error.
    mapping_ = std::move(previous);
  }
  return st;
}

Status IncrementalEvaluator::ColdStart() {
  const Workflow& w = model_->workflow();
  const Network& n = model_->network();
  WSFLOW_RETURN_IF_ERROR(mapping_.ValidateAgainst(w, n));

  if (!std::isfinite(tuning_.load_scale) || tuning_.load_scale <= 0) {
    return Status::InvalidArgument("load_scale must be finite and > 0");
  }
  if (!tuning_.base_loads.empty()) {
    if (tuning_.base_loads.size() != n.num_servers()) {
      return Status::InvalidArgument(
          "base_loads size does not match the network");
    }
    for (double base : tuning_.base_loads) {
      if (!std::isfinite(base) || base < 0) {
        return Status::InvalidArgument(
            "base_loads entries must be finite and non-negative");
      }
    }
  }

  if (!tuning_.mask.trivial()) {
    if (tuning_.mask.size() != n.num_servers()) {
      return Status::InvalidArgument(
          "server mask size does not match the network");
    }
    for (const Operation& op : w.operations()) {
      if (!tuning_.mask.alive(mapping_.ServerOf(op.id()))) {
        return Status::FailedPrecondition("operation '" + op.name() +
                                          "' is hosted on a down server");
      }
    }
    if (alive_servers_.empty()) {
      for (uint32_t s = 0; s < n.num_servers(); ++s) {
        if (tuning_.mask.alive(ServerId(s))) alive_servers_.push_back(s);
      }
    }
  }

  if (pair_prop_.empty()) {
    model_->router().WarmAllPairs();
    WSFLOW_RETURN_IF_ERROR(BuildPairTable());
  }
  line_ = model_->IsLineWorkflow();
  if (!line_ && nodes_.empty()) {
    WSFLOW_ASSIGN_OR_RETURN(const Block* root, model_->BlockRoot());
    tproc_reader_.assign(w.num_operations(), -1);
    edge_consumer_.assign(w.num_transitions(), -1);
    int root_index = -1;
    WSFLOW_RETURN_IF_ERROR(FlattenBlocks(*root, -1, &root_index));
    WSFLOW_CHECK_EQ(root_index, 0);
    node_pos_.assign(nodes_.size(), -1);
  }

  tcomm_.resize(w.num_transitions());
  for (const Transition& t : w.transitions()) {
    tcomm_[t.id.value] = ComputeEdge(t.id);
  }
  loads_.assign(n.num_servers(), 0.0);
  Reanchor();  // loads_ and the line sums, freshly summed
  if (!line_) {
    dirty_.clear();
    for (size_t i = nodes_.size(); i-- > 0;) {
      nodes_[i].dirty = false;
      RecomputeNode(nodes_[i]);
    }
  }
  undo_.clear();
  ++counters_.full_evaluations;
  return Status::OK();
}

Status IncrementalEvaluator::BuildPairTable() {
  const Network& n = model_->network();
  const size_t N = n.num_servers();
  pair_prop_.assign(N * N, 0.0);
  pair_secs_per_bit_.assign(N * N, 0.0);
  pair_reachable_.assign(N * N, 1);
  for (uint32_t a = 0; a < N; ++a) {
    for (uint32_t b = 0; b < N; ++b) {
      if (a == b) continue;
      size_t idx = static_cast<size_t>(a) * N + b;
      Result<Route> route =
          model_->router().FindRoute(ServerId(a), ServerId(b));
      if (!route.ok()) {
        pair_reachable_[idx] = 0;
        continue;
      }
      pair_prop_[idx] = route->TotalPropagation(n);
      double secs_per_bit = 0;
      for (LinkId l : route->links) secs_per_bit += 1.0 / n.link(l).speed_bps;
      pair_secs_per_bit_[idx] = secs_per_bit;
    }
  }
  if (!tuning_.mask.trivial()) {
    // Sever every pair whose endpoints or transit servers are down. The
    // BFS tables above describe the full network and are kept as-is; the
    // mask is a filter pass, never a rebuild.
    for (uint32_t a = 0; a < N; ++a) {
      for (uint32_t b = 0; b < N; ++b) {
        if (a == b) continue;
        size_t idx = static_cast<size_t>(a) * N + b;
        if (!pair_reachable_[idx]) continue;
        if (!tuning_.mask.alive(ServerId(a)) ||
            !tuning_.mask.alive(ServerId(b))) {
          pair_reachable_[idx] = 0;
          continue;
        }
        Result<Route> route =
            model_->router().FindRoute(ServerId(a), ServerId(b));
        WSFLOW_CHECK(route.ok());  // reachable above, router is warm
        if (!RouteAvoidsDown(*route, n, ServerId(a), ServerId(b),
                             tuning_.mask)) {
          pair_reachable_[idx] = 0;
        }
      }
    }
  }
  return Status::OK();
}

Status IncrementalEvaluator::FlattenBlocks(const Block& block, int parent,
                                           int* out_index) {
  const Workflow& w = model_->workflow();
  int index = static_cast<int>(nodes_.size());
  *out_index = index;
  nodes_.push_back(Node{});
  nodes_[index].block = &block;
  nodes_[index].parent = parent;
  switch (block.kind) {
    case Block::Kind::kLeaf:
      tproc_reader_[block.op.value] = index;
      break;
    case Block::Kind::kSequence: {
      std::vector<int> children;
      children.reserve(block.children.size());
      for (const Block& child : block.children) {
        int child_index = -1;
        WSFLOW_RETURN_IF_ERROR(FlattenBlocks(child, index, &child_index));
        children.push_back(child_index);
      }
      std::vector<TransitionId> seq_edges;
      for (size_t i = 0; i + 1 < block.children.size(); ++i) {
        WSFLOW_ASSIGN_OR_RETURN(
            TransitionId t,
            w.FindTransition(TailOperation(block.children[i]),
                             HeadOperation(block.children[i + 1])));
        edge_consumer_[t.value] = index;
        seq_edges.push_back(t);
      }
      nodes_[index].children = std::move(children);
      nodes_[index].seq_edges = std::move(seq_edges);
      break;
    }
    case Block::Kind::kBranch: {
      tproc_reader_[block.split.value] = index;
      tproc_reader_[block.join.value] = index;
      std::vector<Arm> arms;
      arms.reserve(block.children.size());
      for (const Block& body : block.children) {
        Arm arm;
        if (body.kind == Block::Kind::kSequence && body.children.empty()) {
          WSFLOW_ASSIGN_OR_RETURN(TransitionId t,
                                  w.FindTransition(block.split, block.join));
          edge_consumer_[t.value] = index;
          arm.direct = t;
        } else {
          WSFLOW_ASSIGN_OR_RETURN(
              TransitionId entry,
              w.FindTransition(block.split, HeadOperation(body)));
          WSFLOW_ASSIGN_OR_RETURN(
              TransitionId exit,
              w.FindTransition(TailOperation(body), block.join));
          edge_consumer_[entry.value] = index;
          edge_consumer_[exit.value] = index;
          arm.entry = entry;
          arm.exit = exit;
          WSFLOW_RETURN_IF_ERROR(FlattenBlocks(body, index, &arm.node));
        }
        arms.push_back(arm);
      }
      nodes_[index].arms = std::move(arms);
      break;
    }
  }
  return Status::OK();
}

Status IncrementalEvaluator::CheckMove(OperationId op, ServerId server) const {
  if (op.value >= mapping_.num_operations()) {
    return Status::InvalidArgument("operation not in the bound workflow");
  }
  if (!model_->network().Contains(server)) {
    return Status::InvalidArgument("server not in the bound network");
  }
  if (!tuning_.mask.alive(server)) {
    return Status::FailedPrecondition(
        "server is down under the bound server mask");
  }
  return Status::OK();
}

Status IncrementalEvaluator::Apply(OperationId op, ServerId server) {
  WSFLOW_RETURN_IF_ERROR(CheckMove(op, server));
  undo_.push_back(
      UndoRecord{op, mapping_.ServerOf(op), OperationId(), ServerId()});
  MoveInternal(op, server);
  return Status::OK();
}

Status IncrementalEvaluator::Move(OperationId op, ServerId server) {
  WSFLOW_RETURN_IF_ERROR(CheckMove(op, server));
  MoveInternal(op, server);
  return Status::OK();
}

Status IncrementalEvaluator::Swap(OperationId a, OperationId b) {
  if (a.value >= mapping_.num_operations() ||
      b.value >= mapping_.num_operations()) {
    return Status::InvalidArgument("operation not in the bound workflow");
  }
  ServerId sa = mapping_.ServerOf(a);
  ServerId sb = mapping_.ServerOf(b);
  undo_.push_back(UndoRecord{a, sa, b, sb});
  MoveInternal(a, sb);
  MoveInternal(b, sa);
  return Status::OK();
}

Status IncrementalEvaluator::Undo() {
  if (undo_.empty()) {
    return Status::FailedPrecondition("nothing to undo");
  }
  UndoRecord record = undo_.back();
  undo_.pop_back();
  if (record.b.valid()) MoveInternal(record.b, record.b_old);
  MoveInternal(record.a, record.a_old);
  return Status::OK();
}

void IncrementalEvaluator::SetLoad(uint32_t server, double value) {
  loads_[server] = value;
  if (!tuning_.use_load_index) return;
  if (load_dirty_[server]) {
    if (value == index_value_[server]) {
      // The cell came back to the tree's snapshot (a batch restore, or an
      // undo that cancels exactly): no patch needed after all.
      load_dirty_[server] = 0;
      for (size_t i = 0; i < dirty_loads_.size(); ++i) {
        if (dirty_loads_[i] == server) {
          dirty_loads_[i] = dirty_loads_.back();
          dirty_loads_.pop_back();
          break;
        }
      }
    }
    return;
  }
  if (value == index_value_[server]) return;
  load_dirty_[server] = 1;
  dirty_loads_.push_back(server);
  if (dirty_loads_.size() > kMaxPendingLoads) FlushLoadIndex();
}

void IncrementalEvaluator::FlushLoadIndex() {
  // Flush order is irrelevant to the result: the tree shape is a pure
  // function of the final key set.
  for (uint32_t s : dirty_loads_) {
    load_index_.Update(s, index_value_[s], loads_[s]);
    index_value_[s] = loads_[s];
    load_dirty_[s] = 0;
  }
  dirty_loads_.clear();
}

void IncrementalEvaluator::MoveInternal(OperationId op, ServerId to) {
  ServerId from = mapping_.ServerOf(op);
  if (from == to) return;
  ++moves_since_anchor_;
  double prob = LoadProb(op);
  double tproc_from = model_->TprocOn(op, from);
  double tproc_to = model_->TprocOn(op, to);
  SetLoad(from.value, loads_[from.value] - prob * tproc_from);
  SetLoad(to.value, loads_[to.value] + prob * tproc_to);
  mapping_.Assign(op, to);
  if (line_) {
    line_exec_ += tproc_to - tproc_from;
  } else if (tproc_reader_[op.value] >= 0) {
    MarkDirty(tproc_reader_[op.value]);
  }
  const Workflow& w = model_->workflow();
  for (TransitionId t : w.in_edges(op)) RefreshEdge(t);
  for (TransitionId t : w.out_edges(op)) RefreshEdge(t);
}

IncrementalEvaluator::EdgeCache IncrementalEvaluator::ComputeEdge(
    TransitionId t) const {
  const Transition& edge = model_->workflow().transition(t);
  ServerId from = mapping_.ServerOf(edge.from);
  ServerId to = mapping_.ServerOf(edge.to);
  if (from == to) return EdgeCache{0.0, true};
  size_t idx = static_cast<size_t>(from.value) *
                   model_->network().num_servers() +
               to.value;
  if (!pair_reachable_[idx]) return EdgeCache{0.0, false};
  return EdgeCache{
      pair_prop_[idx] + edge.message_bits * pair_secs_per_bit_[idx], true};
}

void IncrementalEvaluator::RefreshEdge(TransitionId t) {
  EdgeCache next = ComputeEdge(t);
  EdgeCache& current = tcomm_[t.value];
  if (line_) {
    line_exec_ +=
        (next.ok ? next.value : 0.0) - (current.ok ? current.value : 0.0);
    if (!next.ok && current.ok) ++bad_edges_;
    if (next.ok && !current.ok) --bad_edges_;
  } else if (edge_consumer_[t.value] >= 0) {
    MarkDirty(edge_consumer_[t.value]);
  }
  current = next;
}

void IncrementalEvaluator::MarkDirty(int node) {
  while (node >= 0 && !nodes_[node].dirty) {
    nodes_[node].dirty = true;
    dirty_.push_back(node);
    node = nodes_[node].parent;
  }
}

void IncrementalEvaluator::Flush() {
  if (dirty_.empty()) return;
  // Parents precede children in index order, so a descending sweep
  // recomputes every dirty child before the parent that reads it.
  std::sort(dirty_.begin(), dirty_.end(), std::greater<int>());
  for (int index : dirty_) {
    RecomputeNode(nodes_[index]);
    nodes_[index].dirty = false;
  }
  dirty_.clear();
}

double IncrementalEvaluator::EdgeContribution(TransitionId t,
                                              bool* ok) const {
  const EdgeCache& cache = tcomm_[t.value];
  if (!cache.ok) {
    *ok = false;
    return 0.0;
  }
  return cache.value;
}

void IncrementalEvaluator::RecomputeNode(Node& node) {
  const Block& block = *node.block;
  node.ok = true;
  switch (block.kind) {
    case Block::Kind::kLeaf:
      node.value = TprocHere(block.op);
      return;
    case Block::Kind::kSequence: {
      double total = 0;
      for (int child : node.children) {
        total += nodes_[child].value;
        node.ok = node.ok && nodes_[child].ok;
      }
      for (TransitionId t : node.seq_edges) {
        total += EdgeContribution(t, &node.ok);
      }
      node.value = total;
      return;
    }
    case Block::Kind::kBranch: {
      double combined = 0;
      bool first = true;
      for (size_t i = 0; i < node.arms.size(); ++i) {
        const Arm& arm = node.arms[i];
        double arm_time;
        if (arm.node < 0) {
          arm_time = EdgeContribution(arm.direct, &node.ok);
        } else {
          arm_time = EdgeContribution(arm.entry, &node.ok) +
                     nodes_[arm.node].value +
                     EdgeContribution(arm.exit, &node.ok);
          node.ok = node.ok && nodes_[arm.node].ok;
        }
        switch (block.branch_type) {
          case OperationType::kAndSplit:
            combined = first ? arm_time : std::max(combined, arm_time);
            break;
          case OperationType::kOrSplit:
            combined = first ? arm_time : std::min(combined, arm_time);
            break;
          case OperationType::kXorSplit:
            combined += block.branch_probs[i] * arm_time;
            break;
          default:
            // DecomposeBlocks only emits split-typed branch blocks.
            WSFLOW_CHECK(false) << "branch block with non-split type";
        }
        first = false;
      }
      node.value =
          TprocHere(block.split) + combined + TprocHere(block.join);
      return;
    }
  }
}

void IncrementalEvaluator::Reanchor() {
  moves_since_anchor_ = 0;
  const Workflow& w = model_->workflow();
  if (tuning_.base_loads.empty()) {
    std::fill(loads_.begin(), loads_.end(), 0.0);
  } else {
    loads_.assign(tuning_.base_loads.begin(), tuning_.base_loads.end());
  }
  for (const Operation& op : w.operations()) {
    ServerId s = mapping_.ServerOf(op.id());
    loads_[s.value] += LoadProb(op.id()) * model_->TprocOn(op.id(), s);
  }
  // Rebuilding from the freshly summed cells resets any drift between the
  // index's tree-order total and the cold-order loads, so the fast
  // penalty re-agrees with the O(N) pass at every re-anchor point. Under a
  // non-trivial mask the tree indexes the survivor cells only — a fresh
  // per-mask-epoch treap whose Penalty() is exactly the masked statistic.
  if (tuning_.use_load_index) {
    if (tuning_.mask.trivial()) {
      load_index_.Rebuild(loads_);
    } else {
      load_index_.Rebuild(loads_, alive_servers_);
    }
    index_value_.assign(loads_.begin(), loads_.end());
    load_dirty_.assign(loads_.size(), 0);
    dirty_loads_.clear();
  }
  if (line_) {
    line_exec_ = 0;
    bad_edges_ = 0;
    for (const Operation& op : w.operations()) {
      line_exec_ += TprocHere(op.id());
    }
    for (const Transition& t : w.transitions()) {
      const EdgeCache& cache = tcomm_[t.id.value];
      if (cache.ok) {
        line_exec_ += cache.value;
      } else {
        ++bad_edges_;
      }
    }
  }
}

Result<double> IncrementalEvaluator::ExecutionTime() {
  if (moves_since_anchor_ >= tuning_.reanchor_interval) Reanchor();
  if (line_) {
    if (bad_edges_ > 0) return Disconnected();
    return line_exec_;
  }
  Flush();
  if (!nodes_[0].ok) return Disconnected();
  return nodes_[0].value;
}

double IncrementalEvaluator::TimePenalty() const {
  if (loads_.empty()) return 0.0;
  if (!tuning_.mask.trivial() && !tuning_.use_load_index) {
    // Survivor-only fairness: average and deviations over the alive cells.
    ++counters_.penalty_full;
    double avg = 0;
    for (uint32_t s : alive_servers_) avg += loads_[s];
    avg /= static_cast<double>(alive_servers_.size());
    double penalty = 0;
    for (uint32_t s : alive_servers_) {
      penalty += std::fabs(loads_[s] - avg) / 2.0;
    }
    return penalty;
  }
  if (tuning_.use_load_index) {
    // With a mask the tree was rebuilt over the survivor cells (bind /
    // re-anchor), so the same descent answers the masked statistic; dirty
    // cells are always alive (moves to down servers are rejected).
    ++counters_.penalty_fast;
    if (dirty_loads_.empty()) return load_index_.Penalty();
    return load_index_.PenaltyPatched(dirty_loads_, index_value_, loads_);
  }
  ++counters_.penalty_full;
  double avg = 0;
  for (double load : loads_) avg += load;
  avg /= static_cast<double>(loads_.size());
  double penalty = 0;
  for (double load : loads_) penalty += std::fabs(load - avg) / 2.0;
  return penalty;
}

Result<CostBreakdown> IncrementalEvaluator::Evaluate() {
  ++counters_.delta_evaluations;
  WSFLOW_ASSIGN_OR_RETURN(double exec, ExecutionTime());
  CostBreakdown out;
  out.execution_time = exec;
  out.time_penalty = TimePenalty();
  out.combined = options_.execution_weight * out.execution_time +
                 options_.fairness_weight * out.time_penalty;
  return out;
}

Result<double> IncrementalEvaluator::Combined() {
  WSFLOW_ASSIGN_OR_RETURN(CostBreakdown breakdown, Evaluate());
  return breakdown.combined;
}

void IncrementalEvaluator::PrepareBatchBase() {
  if (moves_since_anchor_ >= tuning_.reanchor_interval) Reanchor();
  if (!line_) Flush();
  // Fold pending cells in up front so every candidate's penalty query
  // patches only the two cells that candidate mutates.
  if (tuning_.use_load_index) FlushLoadIndex();
}

void IncrementalEvaluator::CollectOpEdges(OperationId op) {
  // May append an edge another CollectOpEdges call already added (a swap of
  // adjacent operations shares their connecting transition): the duplicate
  // is intentional, so the refresh replay touches it once per move exactly
  // like Swap does. Saves happen before any mutation, so duplicate save
  // slots hold the same original value and restore order cannot matter.
  const Workflow& w = model_->workflow();
  for (TransitionId t : w.in_edges(op)) batch_edges_.push_back(t);
  for (TransitionId t : w.out_edges(op)) batch_edges_.push_back(t);
}

void IncrementalEvaluator::SaveBatchEdges() {
  batch_saved_edges_.clear();
  for (TransitionId t : batch_edges_) {
    batch_saved_edges_.push_back(tcomm_[t.value]);
  }
}

void IncrementalEvaluator::BuildBatchPath(std::span<const OperationId> ops,
                                          bool annotate) {
  batch_path_.clear();
  batch_saved_nodes_.clear();
  if (line_) return;
  // Reuse the dirty-marking machinery to take the ancestor closure, then
  // freeze it: the same path serves every candidate of the batch.
  for (OperationId op : ops) {
    if (tproc_reader_[op.value] >= 0) MarkDirty(tproc_reader_[op.value]);
  }
  for (TransitionId t : batch_edges_) {
    if (edge_consumer_[t.value] >= 0) MarkDirty(edge_consumer_[t.value]);
  }
  std::sort(dirty_.begin(), dirty_.end(), std::greater<int>());
  for (int index : dirty_) {
    nodes_[index].dirty = false;
    batch_path_.push_back(index);
    batch_saved_nodes_.push_back(
        NodeSnapshot{nodes_[index].value, nodes_[index].ok});
  }
  dirty_.clear();
  batch_arm_.assign(batch_path_.size(), ArmStep{});
  if (annotate && tuning_.use_arm_path) AnnotateBatchPath(ops);
}

bool IncrementalEvaluator::AllowArmOnly(const Node& node) const {
  if (tuning_.mask.trivial()) {
    return node.block->kind != Block::Kind::kLeaf;
  }
  // Under a mask a candidate can sever edges anywhere in its fan, flipping
  // arm ok bits — the full ancestor closure is load-bearing there
  // (DESIGN.md §9). Only folds proven sibling-safe may go partial: AND/OR
  // branches, whose max/min and ok-AND are exact and order-independent,
  // so the partial fold cannot even reorder a rounding, let alone drop a
  // severed sibling.
  const Block& block = *node.block;
  return block.kind == Block::Kind::kBranch &&
         (block.branch_type == OperationType::kAndSplit ||
          block.branch_type == OperationType::kOrSplit);
}

void IncrementalEvaluator::AnnotateBatchPath(
    std::span<const OperationId> ops) {
  // Classify every path node's inputs as fan-invariant (children off the
  // path, edges outside the batch set, sibling arms — frozen into `rest`
  // once) or live (path children and batch edges — re-read per candidate).
  // Only nodes reading a moved op's T_proc, and branches whose changed
  // inputs span more than one arm, keep the full per-candidate refold.
  const size_t path_size = batch_path_.size();
  const int n_path = static_cast<int>(path_size);
  for (size_t i = 0; i < path_size; ++i) {
    node_pos_[batch_path_[i]] = static_cast<int>(i);
  }
  batch_touched_.assign(path_size, 0);
  for (OperationId op : ops) {
    const int reader = tproc_reader_[op.value];
    if (reader >= 0) batch_touched_[node_pos_[reader]] = 1;
  }

  // CSR layout of the live inputs, grouped per path node. Children land in
  // descending node-index order (the path order), edges in batch-slot
  // order — both deterministic per (state, fan).
  batch_child_count_.assign(path_size + 1, 0);
  batch_edge_count_.assign(path_size + 1, 0);
  for (size_t i = 0; i < path_size; ++i) {
    const int parent = nodes_[batch_path_[i]].parent;
    // The closure is ancestor-complete: a path node's parent is on the
    // path too (or it is the root).
    if (parent >= 0) ++batch_child_count_[node_pos_[parent] + 1];
  }
  for (TransitionId t : batch_edges_) {
    const int consumer = edge_consumer_[t.value];
    if (consumer >= 0) ++batch_edge_count_[node_pos_[consumer] + 1];
  }
  for (int i = 0; i < n_path; ++i) {
    batch_child_count_[i + 1] += batch_child_count_[i];
    batch_edge_count_[i + 1] += batch_edge_count_[i];
  }
  batch_live_children_.resize(batch_child_count_[path_size]);
  batch_live_edges_.resize(batch_edge_count_[path_size]);
  {
    std::vector<int> child_fill(batch_child_count_.begin(),
                                batch_child_count_.end() - 1);
    std::vector<int> edge_fill(batch_edge_count_.begin(),
                               batch_edge_count_.end() - 1);
    for (size_t i = 0; i < path_size; ++i) {
      const int parent = nodes_[batch_path_[i]].parent;
      if (parent < 0) continue;
      batch_live_children_[child_fill[node_pos_[parent]]++] = batch_path_[i];
    }
    for (TransitionId t : batch_edges_) {
      const int consumer = edge_consumer_[t.value];
      if (consumer < 0) continue;
      batch_live_edges_[edge_fill[node_pos_[consumer]]++] = t;
    }
  }

  for (size_t i = 0; i < path_size; ++i) {
    if (batch_touched_[i]) continue;  // split/join/leaf T_proc changes
    const Node& node = nodes_[batch_path_[i]];
    if (!AllowArmOnly(node)) continue;
    const Block& block = *node.block;
    ArmStep& s = batch_arm_[i];
    const int cb = batch_child_count_[i], ce = batch_child_count_[i + 1];
    const int eb = batch_edge_count_[i], ee = batch_edge_count_[i + 1];
    if (block.kind == Block::Kind::kSequence) {
      // rest = children off the path + linking edges outside the batch
      // set, summed in fold order. The per-candidate combine regroups the
      // full fold's left-to-right sum — hence the 1e-9 (not bitwise)
      // contract of use_arm_path.
      double rest = 0;
      bool ok = true;
      for (int child : node.children) {
        if (node_pos_[child] >= 0) continue;  // live: on the path
        rest += nodes_[child].value;
        ok = ok && nodes_[child].ok;
      }
      for (TransitionId t : node.seq_edges) {
        bool live = false;
        for (int r = eb; r < ee && !live; ++r) {
          live = (batch_live_edges_[r] == t);
        }
        if (!live) rest += EdgeContribution(t, &ok);
      }
      s.mode = ArmStep::Mode::kSequence;
      s.rest = rest;
      s.rest_ok = ok;
      s.child_begin = cb;
      s.child_end = ce;
      s.edge_begin = eb;
      s.edge_end = ee;
      continue;
    }
    // Branch: every changed input must fall inside one arm, and that arm
    // must have a body (a changed direct split->join edge implies the op
    // is the split or join, which batch_touched_ already excluded).
    int dirty_arm = -1;
    bool single = true;
    auto merge = [&dirty_arm, &single](int arm) {
      if (arm < 0) {
        single = false;
      } else if (dirty_arm < 0) {
        dirty_arm = arm;
      } else if (dirty_arm != arm) {
        single = false;
      }
    };
    for (int r = cb; r < ce && single; ++r) {
      int arm_of_child = -1;
      for (size_t a = 0; a < node.arms.size(); ++a) {
        if (node.arms[a].node == batch_live_children_[r]) {
          arm_of_child = static_cast<int>(a);
          break;
        }
      }
      merge(arm_of_child);
    }
    for (int r = eb; r < ee && single; ++r) {
      const TransitionId t = batch_live_edges_[r];
      int arm_of_edge = -1;
      for (size_t a = 0; a < node.arms.size(); ++a) {
        const Arm& arm = node.arms[a];
        if (arm.node >= 0 && (arm.entry == t || arm.exit == t)) {
          arm_of_edge = static_cast<int>(a);
          break;
        }
      }
      merge(arm_of_edge);
    }
    if (!single || dirty_arm < 0 ||
        node.arms[dirty_arm].node < 0) {
      continue;
    }
    s.branch_type = block.branch_type;
    s.pre = TprocHere(block.split);
    s.post = TprocHere(block.join);
    double rest = 0;
    bool rest_ok = true;
    bool rest_empty = true;
    for (size_t a = 0; a < node.arms.size(); ++a) {
      if (static_cast<int>(a) == dirty_arm) continue;
      const Arm& arm = node.arms[a];
      double arm_time;
      if (arm.node < 0) {
        arm_time = EdgeContribution(arm.direct, &rest_ok);
      } else {
        arm_time = EdgeContribution(arm.entry, &rest_ok) +
                   nodes_[arm.node].value +
                   EdgeContribution(arm.exit, &rest_ok);
        rest_ok = rest_ok && nodes_[arm.node].ok;
      }
      switch (block.branch_type) {
        case OperationType::kAndSplit:
          rest = rest_empty ? arm_time : std::max(rest, arm_time);
          break;
        case OperationType::kOrSplit:
          rest = rest_empty ? arm_time : std::min(rest, arm_time);
          break;
        case OperationType::kXorSplit:
          rest += block.branch_probs[a] * arm_time;
          break;
        default:
          WSFLOW_CHECK(false) << "branch block with non-split type";
      }
      rest_empty = false;
    }
    s.mode = ArmStep::Mode::kBranch;
    s.rest = rest;
    s.rest_ok = rest_ok;
    s.rest_empty = rest_empty;
    s.arm_child = node.arms[dirty_arm].node;
    s.entry = node.arms[dirty_arm].entry;
    s.exit = node.arms[dirty_arm].exit;
    if (block.branch_type == OperationType::kXorSplit) {
      s.prob = block.branch_probs[dirty_arm];
    }
  }
  for (size_t i = 0; i < path_size; ++i) node_pos_[batch_path_[i]] = -1;
}

void IncrementalEvaluator::BuildFanGrid(OperationId op) {
  const Workflow& w = model_->workflow();
  const size_t N = model_->network().num_servers();
  const size_t slots = batch_edges_.size();
  if (fan_grid_value_.size() < slots * N) {
    fan_grid_value_.resize(slots * N);
    fan_grid_ok_.resize(slots * N);
  }
  for (size_t e = 0; e < slots; ++e) {
    const Transition& edge = w.transition(batch_edges_[e]);
    const bool op_sends = (edge.from == op);
    const uint32_t other =
        mapping_.ServerOf(op_sends ? edge.to : edge.from).value;
    const double bits = edge.message_bits;
    double* value = fan_grid_value_.data() + e * N;
    char* ok = fan_grid_ok_.data() + e * N;
    // A landing server equal to `other` co-locates the endpoints: the
    // zeroed diagonal of the route tables already yields exactly +0.0
    // (0 + bits * 0) with reachable set, matching ComputeEdge's from==to
    // early return bit for bit, so no per-cell branch is needed.
    if (!op_sends) {
      // The moved op receives the message: [other -> dest] rows are
      // contiguous, so this is a straight FMA sweep over the fan.
      const double* prop = pair_prop_.data() + static_cast<size_t>(other) * N;
      const double* spb =
          pair_secs_per_bit_.data() + static_cast<size_t>(other) * N;
      const char* reach =
          pair_reachable_.data() + static_cast<size_t>(other) * N;
      for (size_t d = 0; d < N; ++d) {
        value[d] = prop[d] + bits * spb[d];
        ok[d] = reach[d];
      }
    } else {
      // The moved op sends: [dest -> other] strides by N.
      for (size_t d = 0; d < N; ++d) {
        const size_t idx = d * N + other;
        value[d] = pair_prop_[idx] + bits * pair_secs_per_bit_[idx];
        ok[d] = pair_reachable_[idx];
      }
    }
  }
  counters_.grid_cells += slots * N;
}

void IncrementalEvaluator::RestoreBatchState() {
  for (size_t i = 0; i < batch_edges_.size(); ++i) {
    tcomm_[batch_edges_[i].value] = batch_saved_edges_[i];
  }
  for (size_t i = 0; i < batch_path_.size(); ++i) {
    Node& node = nodes_[batch_path_[i]];
    node.value = batch_saved_nodes_[i].value;
    node.ok = batch_saved_nodes_[i].ok;
  }
}

void IncrementalEvaluator::SweepBatchPath() {
  // batch_path_ is descending, so a child's fresh value is in place before
  // the parent (full or partial) reads it.
  for (size_t i = 0; i < batch_path_.size(); ++i) {
    Node& node = nodes_[batch_path_[i]];
    const ArmStep& s = batch_arm_[i];
    switch (s.mode) {
      case ArmStep::Mode::kFull:
        RecomputeNode(node);
        ++counters_.full_path_nodes;
        break;
      case ArmStep::Mode::kSequence: {
        ++counters_.arm_path_nodes;
        double value = s.rest;
        bool ok = s.rest_ok;
        for (int r = s.child_begin; r < s.child_end; ++r) {
          const Node& child = nodes_[batch_live_children_[r]];
          value += child.value;
          ok = ok && child.ok;
        }
        for (int r = s.edge_begin; r < s.edge_end; ++r) {
          value += EdgeContribution(batch_live_edges_[r], &ok);
        }
        node.value = value;
        node.ok = ok;
        break;
      }
      case ArmStep::Mode::kBranch: {
        // Recombine the dirty arm — entry/exit read live from tcomm_, the
        // body from the freshly swept child — with the frozen sibling
        // fold, mirroring RecomputeNode's operation order exactly.
        ++counters_.arm_path_nodes;
        bool ok = s.rest_ok;
        const Node& child = nodes_[s.arm_child];
        const double arm_time = (EdgeContribution(s.entry, &ok) +
                                 child.value) +
                                EdgeContribution(s.exit, &ok);
        ok = ok && child.ok;
        double combined;
        switch (s.branch_type) {
          case OperationType::kAndSplit:
            combined = s.rest_empty ? arm_time : std::max(s.rest, arm_time);
            break;
          case OperationType::kOrSplit:
            combined = s.rest_empty ? arm_time : std::min(s.rest, arm_time);
            break;
          default:  // kXorSplit; AnnotateBatchPath rejects other types
            combined = s.rest + s.prob * arm_time;
            break;
        }
        node.value = (s.pre + combined) + s.post;
        node.ok = ok;
        break;
      }
    }
  }
}

double IncrementalEvaluator::CombineScore(double exec, bool ok) const {
  if (!ok) return std::numeric_limits<double>::infinity();
  return options_.execution_weight * exec +
         options_.fairness_weight * TimePenalty();
}

double IncrementalEvaluator::CombineScore(double exec, bool ok,
                                          double penalty) const {
  if (!ok) return std::numeric_limits<double>::infinity();
  return options_.execution_weight * exec +
         options_.fairness_weight * penalty;
}

double IncrementalEvaluator::TwoCellPenalty(uint32_t from, uint32_t to) const {
  ++counters_.penalty_fast;
  const uint32_t cells[2] = {from, to};
  return load_index_.PenaltyPatched(cells, index_value_, loads_);
}

void IncrementalEvaluator::BeginFanMemo(size_t slots) {
  if (!tuning_.use_edge_memo) return;
  const size_t need = slots * model_->network().num_servers();
  if (fan_memo_.size() < need) {
    fan_memo_.resize(need);
    fan_memo_epoch_.resize(need, 0);
  }
  ++memo_epoch_;
  if (memo_epoch_ == 0) {
    // Epoch counter wrapped: flush so a stale entry cannot masquerade as
    // current. Entries start at 0, so epoch 0 itself is never valid.
    std::fill(fan_memo_epoch_.begin(), fan_memo_epoch_.end(), 0u);
    memo_epoch_ = 1;
  }
}

IncrementalEvaluator::EdgeCache IncrementalEvaluator::MemoizedEdge(
    size_t slot, TransitionId t, ServerId dest) {
  if (!tuning_.use_edge_memo) return ComputeEdge(t);
  const size_t idx = slot * model_->network().num_servers() + dest.value;
  if (fan_memo_epoch_[idx] == memo_epoch_) {
    ++counters_.edge_memo_hits;
    return fan_memo_[idx];
  }
  ++counters_.edge_memo_misses;
  const EdgeCache computed = ComputeEdge(t);
  fan_memo_epoch_[idx] = memo_epoch_;
  fan_memo_[idx] = computed;
  return computed;
}

Status IncrementalEvaluator::ScoreMoves(OperationId op,
                                        std::span<const ServerId> servers,
                                        std::span<double> costs) {
  if (servers.size() != costs.size()) {
    return Status::InvalidArgument(
        "ScoreMoves needs one cost slot per candidate server");
  }
  if (op.value >= mapping_.num_operations()) {
    return Status::InvalidArgument("operation not in the bound workflow");
  }
  for (ServerId s : servers) {
    if (!model_->network().Contains(s)) {
      return Status::InvalidArgument("server not in the bound network");
    }
  }
  if (servers.empty()) return Status::OK();
  PrepareBatchBase();

  const ServerId from = mapping_.ServerOf(op);
  const double prob = LoadProb(op);
  const double tproc_from = model_->TprocOn(op, from);

  batch_edges_.clear();
  CollectOpEdges(op);
  SaveBatchEdges();
  const OperationId moved[] = {op};
  BuildBatchPath(moved, /*annotate=*/true);
  const bool use_grid = tuning_.use_soa_fan;
  if (use_grid) {
    // One vectorizable pass per edge slot precomputes the T_comm term for
    // every landing server; the per-candidate fold below reads the grid
    // instead of recomputing (or memo-probing) edges.
    BuildFanGrid(op);
    ++counters_.soa_fans;
    counters_.soa_candidates += servers.size();
  } else {
    BeginFanMemo(batch_edges_.size());
  }

  const double base_line_exec = line_exec_;
  const size_t base_bad_edges = bad_edges_;
  const double load_from_base = loads_[from.value];
  // With the load index live the candidate's two cells are written
  // directly and patched explicitly (TwoCellPenalty), skipping the
  // pending-list bookkeeping SetLoad pays four times per candidate.
  const bool two_cell = tuning_.use_load_index;

  for (size_t i = 0; i < servers.size(); ++i) {
    const ServerId to = servers[i];
    if (!tuning_.mask.alive(to)) {
      // A down landing server scores like a disconnected state: the
      // candidate is unusable, not an error (Apply would reject it).
      costs[i] = std::numeric_limits<double>::infinity();
      ++counters_.delta_evaluations;
      continue;
    }
    const double tproc_to = model_->TprocOn(op, to);
    mapping_.Assign(op, to);
    const double load_to_base = loads_[to.value];
    if (to != from) {
      // Mirror MoveInternal's arithmetic exactly so batch scores agree
      // bit-for-bit with the Apply round-trip.
      if (two_cell) {
        loads_[from.value] = load_from_base - prob * tproc_from;
        loads_[to.value] = load_to_base + prob * tproc_to;
      } else {
        SetLoad(from.value, load_from_base - prob * tproc_from);
        SetLoad(to.value, load_to_base + prob * tproc_to);
      }
    }
    const auto combine = [&](double exec, bool ok) {
      if (!ok) return std::numeric_limits<double>::infinity();
      if (two_cell && to != from) {
        return CombineScore(exec, true,
                            TwoCellPenalty(from.value, to.value));
      }
      return CombineScore(exec, true);
    };
    if (line_) {
      double exec = base_line_exec;
      size_t bad = base_bad_edges;
      if (to != from) exec += tproc_to - tproc_from;
      for (size_t e = 0; e < batch_edges_.size(); ++e) {
        const EdgeCache next =
            use_grid ? GridEdge(e, to) : MemoizedEdge(e, batch_edges_[e], to);
        const EdgeCache& prev = batch_saved_edges_[e];
        exec += (next.ok ? next.value : 0.0) - (prev.ok ? prev.value : 0.0);
        if (!next.ok && prev.ok) ++bad;
        if (next.ok && !prev.ok) --bad;
      }
      costs[i] = combine(exec, bad == 0);
    } else {
      for (size_t e = 0; e < batch_edges_.size(); ++e) {
        tcomm_[batch_edges_[e].value] =
            use_grid ? GridEdge(e, to) : MemoizedEdge(e, batch_edges_[e], to);
      }
      SweepBatchPath();
      costs[i] = combine(nodes_[0].value, nodes_[0].ok);
    }
    ++counters_.delta_evaluations;
    if (to != from) {
      if (two_cell) {
        loads_[from.value] = load_from_base;
        loads_[to.value] = load_to_base;
      } else {
        SetLoad(from.value, load_from_base);
        SetLoad(to.value, load_to_base);
      }
    }
  }
  mapping_.Assign(op, from);
  RestoreBatchState();
  return Status::OK();
}

Status IncrementalEvaluator::ScoreSwaps(OperationId a,
                                        std::span<const OperationId> partners,
                                        std::span<double> costs) {
  if (partners.size() != costs.size()) {
    return Status::InvalidArgument(
        "ScoreSwaps needs one cost slot per partner");
  }
  if (a.value >= mapping_.num_operations()) {
    return Status::InvalidArgument("operation not in the bound workflow");
  }
  for (OperationId b : partners) {
    if (b.value >= mapping_.num_operations()) {
      return Status::InvalidArgument("operation not in the bound workflow");
    }
  }
  if (partners.empty()) return Status::OK();
  PrepareBatchBase();

  const double base_line_exec = line_exec_;
  const size_t base_bad_edges = bad_edges_;
  const ServerId sa = mapping_.ServerOf(a);
  const double prob_a = LoadProb(a);

  // `a`'s edge slots are shared by every partner, so stage-1 T_comm terms
  // come from the SoA grid (or, with the grid off, the per-fan memo keyed
  // on the partner's server). Stage-2 terms (the partner's own edges) are
  // never grid-served or memoized: there `a` sits displaced on the
  // partner's server, so the "other endpoints at base" precondition of
  // both fast paths does not hold.
  batch_edges_.clear();
  CollectOpEdges(a);
  const size_t a_edge_count = batch_edges_.size();
  const bool use_grid = tuning_.use_soa_fan;
  if (use_grid) {
    BuildFanGrid(a);
    ++counters_.soa_fans;
    counters_.soa_candidates += partners.size();
  } else {
    BeginFanMemo(a_edge_count);
  }

  for (size_t i = 0; i < partners.size(); ++i) {
    const OperationId b = partners[i];
    const ServerId sb = mapping_.ServerOf(b);
    if (b == a || sb == sa) {
      // The swap is a no-op; score the working mapping as-is.
      costs[i] = CombineScore(line_ ? base_line_exec : nodes_[0].value,
                              line_ ? base_bad_edges == 0 : nodes_[0].ok);
      ++counters_.delta_evaluations;
      continue;
    }
    const double prob_b = LoadProb(b);
    batch_edges_.resize(a_edge_count);
    CollectOpEdges(b);
    SaveBatchEdges();
    const OperationId swapped[] = {a, b};
    // No arm annotation: the path is rebuilt per partner (each partner
    // dirties its own ancestors), so freezing sibling folds would cost
    // about what it saves.
    BuildBatchPath(swapped, /*annotate=*/false);

    const double load_a_base = loads_[sa.value];
    const double load_b_base = loads_[sb.value];
    double exec = base_line_exec;
    size_t bad = base_bad_edges;
    // Same two-cell fast path as ScoreMoves: direct stores + an explicit
    // [sa, sb] patch, the exact order MoveInternal's SetLoads would have
    // enqueued the cells in.
    const bool two_cell = tuning_.use_load_index;

    // Replay Swap's two MoveInternal calls in order: a -> sb first (b still
    // on sb), then b -> sa, refreshing each op's edges against the caches
    // as they stood at that point. This keeps the running-sum arithmetic
    // bit-identical to the round-trip.
    mapping_.Assign(a, sb);
    if (two_cell) {
      loads_[sa.value] -= prob_a * model_->TprocOn(a, sa);
      loads_[sb.value] += prob_a * model_->TprocOn(a, sb);
    } else {
      SetLoad(sa.value, loads_[sa.value] - prob_a * model_->TprocOn(a, sa));
      SetLoad(sb.value, loads_[sb.value] + prob_a * model_->TprocOn(a, sb));
    }
    if (line_) exec += model_->TprocOn(a, sb) - model_->TprocOn(a, sa);
    for (size_t e = 0; e < a_edge_count; ++e) {
      const TransitionId t = batch_edges_[e];
      const EdgeCache next =
          use_grid ? GridEdge(e, sb) : MemoizedEdge(e, t, sb);
      const EdgeCache& prev = tcomm_[t.value];
      if (line_) {
        exec += (next.ok ? next.value : 0.0) - (prev.ok ? prev.value : 0.0);
        if (!next.ok && prev.ok) ++bad;
        if (next.ok && !prev.ok) --bad;
      }
      tcomm_[t.value] = next;
    }
    mapping_.Assign(b, sa);
    if (two_cell) {
      loads_[sb.value] -= prob_b * model_->TprocOn(b, sb);
      loads_[sa.value] += prob_b * model_->TprocOn(b, sa);
    } else {
      SetLoad(sb.value, loads_[sb.value] - prob_b * model_->TprocOn(b, sb));
      SetLoad(sa.value, loads_[sa.value] + prob_b * model_->TprocOn(b, sa));
    }
    if (line_) exec += model_->TprocOn(b, sa) - model_->TprocOn(b, sb);
    for (size_t e = a_edge_count; e < batch_edges_.size(); ++e) {
      const TransitionId t = batch_edges_[e];
      const EdgeCache next = ComputeEdge(t);
      const EdgeCache& prev = tcomm_[t.value];
      if (line_) {
        exec += (next.ok ? next.value : 0.0) - (prev.ok ? prev.value : 0.0);
        if (!next.ok && prev.ok) ++bad;
        if (next.ok && !prev.ok) --bad;
      }
      tcomm_[t.value] = next;
    }

    double swap_exec;
    bool swap_ok;
    if (line_) {
      swap_exec = exec;
      swap_ok = (bad == 0);
    } else {
      SweepBatchPath();
      swap_exec = nodes_[0].value;
      swap_ok = nodes_[0].ok;
    }
    if (!swap_ok) {
      costs[i] = std::numeric_limits<double>::infinity();
    } else if (two_cell) {
      costs[i] = CombineScore(swap_exec, true,
                              TwoCellPenalty(sa.value, sb.value));
    } else {
      costs[i] = CombineScore(swap_exec, true);
    }
    ++counters_.delta_evaluations;

    mapping_.Assign(a, sa);
    mapping_.Assign(b, sb);
    if (two_cell) {
      loads_[sa.value] = load_a_base;
      loads_[sb.value] = load_b_base;
    } else {
      SetLoad(sa.value, load_a_base);
      SetLoad(sb.value, load_b_base);
    }
    RestoreBatchState();
  }
  return Status::OK();
}

}  // namespace wsflow
