#include "src/cost/pareto.h"

#include <cmath>

namespace wsflow {

bool Dominates(const ObjectivePoint& a, const ObjectivePoint& b) {
  bool no_worse = a.execution_time <= b.execution_time &&
                  a.time_penalty <= b.time_penalty;
  bool strictly_better = a.execution_time < b.execution_time ||
                         a.time_penalty < b.time_penalty;
  return no_worse && strictly_better;
}

std::vector<size_t> ParetoFrontIndices(
    const std::vector<ObjectivePoint>& pts) {
  std::vector<size_t> front;
  for (size_t i = 0; i < pts.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < pts.size() && !dominated; ++j) {
      if (j != i && Dominates(pts[j], pts[i])) dominated = true;
      // Keep only the first of exact duplicates.
      if (j < i && pts[j] == pts[i]) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

double DistanceToOrigin(const ObjectivePoint& p) {
  return std::hypot(p.execution_time, p.time_penalty);
}

double WeightedSum(const ObjectivePoint& p, double execution_weight,
                   double fairness_weight) {
  return execution_weight * p.execution_time +
         fairness_weight * p.time_penalty;
}

}  // namespace wsflow
