// wsflow: shared-load cost model for multi-tenant farms.
//
// The paper costs one workflow on one network; shared-farm serving costs
// many tenant workflows on the *same* servers, each scaled by its traffic.
// A tenant with QPS weight w occupies w times its per-request load on every
// server it touches, while each of its requests still takes the same
// wall-clock path:
//
//   L(s)        = Sum over tenants t of w_t * Load_t(s)
//   FarmPenalty = Sum over servers of |L(s) - avg L| / 2
//   c_t         = w_e * T_execute(m_t) + w_f * FarmPenalty
//
// Load_t(s) is the paper's probability-weighted per-server load of tenant
// t's mapping (p(op) * T_proc(op) summed over its operations on s). The
// per-tenant cost c_t is exactly what an IncrementalEvaluator bound with
// EvalTuning{base_loads = L - w_t * Load_t, load_scale = w_t} reports, so
// one tenant's re-optimization sees the whole farm's fairness while moving
// only its own operations.
//
// TenantLoadVector keeps a tenant's contribution sparse (a small workflow
// touches at most M servers); FarmLoadLedger accumulates the weighted
// combination. The fleet controller re-sums the ledger from scratch in
// tenant order every epoch — O(total operations), deterministic by
// construction, immune to incremental-update drift.

#ifndef WSFLOW_COST_SHARED_LOAD_H_
#define WSFLOW_COST_SHARED_LOAD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/result.h"
#include "src/cost/cost_model.h"
#include "src/deploy/mapping.h"

namespace wsflow {

/// One tenant's per-server load contribution at weight 1, kept sparse.
/// Servers are ascending and unique; `total` is the sum of `loads`.
struct TenantLoadVector {
  std::vector<uint32_t> servers;
  std::vector<double> loads;
  double total = 0;
};

/// Builds the sparse load vector of `m` under `model` (p(op) * T_proc(op)
/// accumulated per hosting server, in server order). The mapping must be
/// total.
TenantLoadVector ComputeTenantLoad(const CostModel& model, const Mapping& m);

/// Dense per-server farm loads combined across tenants.
class FarmLoadLedger {
 public:
  explicit FarmLoadLedger(size_t num_servers) : loads_(num_servers, 0.0) {}

  size_t num_servers() const { return loads_.size(); }
  const std::vector<double>& loads() const { return loads_; }

  /// Zeroes every cell (start of a fresh epoch re-sum).
  void Clear();

  /// Adds `weight` times the tenant's contribution.
  void Add(const TenantLoadVector& tenant, double weight);

  /// Farm loads minus one tenant's weighted contribution — the base_loads
  /// a re-optimization of that tenant evaluates against. Prefer re-summing
  /// the other tenants with Clear()/Add() when exactness matters; this
  /// subtraction is the O(M) shortcut.
  std::vector<double> Excluding(const TenantLoadVector& tenant,
                                double weight) const;

  /// Sum over servers of |L(s) - avg L| / 2.
  double FarmPenalty() const;

  /// Sum of all cells.
  double TotalLoad() const;

 private:
  std::vector<double> loads_;
};

/// Cold shared-load evaluation of one tenant: execution_time is
/// T_execute(m); time_penalty is the fairness penalty of
/// base_loads + weight * Load_m; combined weighs them per `options`.
/// `base_loads` must be empty (all zero) or one entry per server. The
/// reference implementation for the delta-evaluated shared scores.
Result<CostBreakdown> SharedEvaluate(const CostModel& model, const Mapping& m,
                                     double weight,
                                     std::span<const double> base_loads,
                                     const CostOptions& options = {});

}  // namespace wsflow

#endif  // WSFLOW_COST_SHARED_LOAD_H_
