#include "src/cost/shared_load.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace wsflow {

TenantLoadVector ComputeTenantLoad(const CostModel& model, const Mapping& m) {
  const Workflow& w = model.workflow();
  // Dense accumulation first: several operations usually share a server,
  // and summing in server order keeps the vector canonical.
  std::vector<double> dense(model.network().num_servers(), 0.0);
  for (const Operation& op : w.operations()) {
    ServerId s = m.ServerOf(op.id());
    WSFLOW_CHECK(s.valid()) << "ComputeTenantLoad needs a total mapping";
    dense[s.value] += model.OperationProb(op.id()) * model.TprocOn(op.id(), s);
  }
  TenantLoadVector out;
  for (uint32_t s = 0; s < dense.size(); ++s) {
    if (dense[s] != 0.0) {
      out.servers.push_back(s);
      out.loads.push_back(dense[s]);
      out.total += dense[s];
    }
  }
  return out;
}

void FarmLoadLedger::Clear() {
  std::fill(loads_.begin(), loads_.end(), 0.0);
}

void FarmLoadLedger::Add(const TenantLoadVector& tenant, double weight) {
  for (size_t i = 0; i < tenant.servers.size(); ++i) {
    loads_[tenant.servers[i]] += weight * tenant.loads[i];
  }
}

std::vector<double> FarmLoadLedger::Excluding(const TenantLoadVector& tenant,
                                              double weight) const {
  std::vector<double> out = loads_;
  for (size_t i = 0; i < tenant.servers.size(); ++i) {
    out[tenant.servers[i]] -= weight * tenant.loads[i];
    // Clamp the cancellation residue: a cell holding only this tenant must
    // come back to exactly zero, not to -1e-17 (base_loads reject
    // negatives).
    if (out[tenant.servers[i]] < 0) out[tenant.servers[i]] = 0;
  }
  return out;
}

double FarmLoadLedger::FarmPenalty() const {
  if (loads_.empty()) return 0.0;
  double avg = 0;
  for (double l : loads_) avg += l;
  avg /= static_cast<double>(loads_.size());
  double penalty = 0;
  for (double l : loads_) penalty += std::fabs(l - avg) / 2.0;
  return penalty;
}

double FarmLoadLedger::TotalLoad() const {
  double total = 0;
  for (double l : loads_) total += l;
  return total;
}

Result<CostBreakdown> SharedEvaluate(const CostModel& model, const Mapping& m,
                                     double weight,
                                     std::span<const double> base_loads,
                                     const CostOptions& options) {
  const size_t N = model.network().num_servers();
  if (!base_loads.empty() && base_loads.size() != N) {
    return Status::InvalidArgument(
        "base_loads size does not match the network");
  }
  if (!std::isfinite(weight) || weight <= 0) {
    return Status::InvalidArgument("tenant weight must be finite and > 0");
  }
  WSFLOW_ASSIGN_OR_RETURN(double exec, model.ExecutionTime(m));

  std::vector<double> combined(N, 0.0);
  if (!base_loads.empty()) {
    combined.assign(base_loads.begin(), base_loads.end());
  }
  for (const Operation& op : model.workflow().operations()) {
    ServerId s = m.ServerOf(op.id());
    combined[s.value] +=
        weight * model.OperationProb(op.id()) * model.TprocOn(op.id(), s);
  }
  double avg = 0;
  for (double l : combined) avg += l;
  avg /= static_cast<double>(N);
  double penalty = 0;
  for (double l : combined) penalty += std::fabs(l - avg) / 2.0;

  CostBreakdown out;
  out.execution_time = exec;
  out.time_penalty = penalty;
  out.combined = options.execution_weight * exec +
                 options.fairness_weight * penalty;
  return out;
}

}  // namespace wsflow
