// wsflow: incremental (delta) evaluation of deployment mappings.
//
// Every neighborhood search in src/deploy (hill climb, annealing,
// exhaustive enumeration, ...) explores mappings that differ from the
// previous candidate by one operation move or one swap. A cold
// CostModel::Evaluate re-derives everything — all server loads, every
// T_comm term and the full recursive block execution time — so the cost of
// scoring a neighbor is O(M + E + N) plus routing. IncrementalEvaluator
// binds a CostModel to a *working* mapping and keeps the evaluation state
// alive across moves:
//
//   * per-server probability-weighted loads, updated in O(1) per move; the
//     fairness TimePenalty is answered in O(log N) per score by an
//     order-statistic load index (src/cost/load_index.h) maintained with
//     O(log N) point updates on the two load cells a move touches;
//   * a per-transition T_comm cache backed by an all-pairs route table
//     (propagation seconds + seconds-per-bit per server pair), refreshed
//     only for the edges incident to a moved operation;
//   * for line workflows, the closed-form T_execute = Sum T_proc +
//     Sum T_comm maintained as a running sum;
//   * for graph workflows, a flattened copy of the block tree in which
//     each block caches its execution time; a move dirties only the blocks
//     that directly read the moved operation (its leaf / its split-join
//     branch / the blocks consuming its incident messages) plus their
//     ancestors, and only that root path is re-evaluated.
//
// A move therefore costs O(deg(op)) cache refreshes plus the dirty path to
// the block root, and a score costs O(N) on top. To keep the running sums
// from drifting away from a cold evaluation, the evaluator re-anchors them
// (fresh summation in cold evaluation order) every few thousand moves; the
// property suite asserts agreement with CostModel::Evaluate to 1e-9 at
// every step of long random move/swap/undo replays.
//
// The evaluator is a mutable working object: Apply/Swap record an undo
// entry, Undo reverts the most recent one, and the counters separate full
// (re)binds from delta evaluations so search statistics can report both.

#ifndef WSFLOW_COST_INCREMENTAL_H_
#define WSFLOW_COST_INCREMENTAL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/result.h"
#include "src/cost/cost_model.h"
#include "src/cost/load_index.h"
#include "src/deploy/mapping.h"
#include "src/workflow/blocks.h"

namespace wsflow {

/// How often evaluation state was rebuilt from scratch vs delta-scored,
/// and how the fairness / edge fast paths performed.
struct EvalCounters {
  size_t full_evaluations = 0;   ///< Bind/Rebind cold passes.
  size_t delta_evaluations = 0;  ///< Evaluate() calls on delta state.
  size_t penalty_fast = 0;       ///< TimePenalty answered by the load index.
  size_t penalty_full = 0;       ///< TimePenalty recomputed by the O(N) pass.
  size_t edge_memo_hits = 0;     ///< Batch T_comm terms served by the memo.
  size_t edge_memo_misses = 0;   ///< Batch T_comm terms computed and cached.
  size_t soa_fans = 0;           ///< Batch fans scored through the SoA grid.
  size_t soa_candidates = 0;     ///< Candidates folded across SoA fans.
  size_t grid_cells = 0;         ///< (edge slot, server) grid cells precomputed.
  size_t grid_hits = 0;          ///< Batch T_comm terms served from the grid.
  size_t arm_path_nodes = 0;     ///< Path nodes folded arm-only per candidate.
  size_t full_path_nodes = 0;    ///< Path nodes fully recomputed per candidate.
};

/// Performance knobs of the delta evaluator. The defaults are the fast
/// paths; the flags exist so benches and parity tests can reproduce the
/// pre-index behaviour from the same binary.
struct EvalTuning {
  /// Answer TimePenalty from the O(log N) load index instead of the O(N)
  /// summation over the load array.
  bool use_load_index = true;
  /// Memoize (edge, landing server) T_comm terms across one batch fan so
  /// candidates landing on the same server never recompute them. Only
  /// consulted when the SoA grid below is off — the grid supersedes it.
  bool use_edge_memo = true;
  /// Score batch fans through a structure-of-arrays T_comm grid: one pass
  /// per edge slot over the flattened route tables precomputes the term
  /// for every landing server (a contiguous `prop + bits * spb` row the
  /// compiler can vectorize), and per-candidate folds read the grid
  /// instead of recomputing edges. The grid evaluates the exact
  /// expression ComputeEdge would, so scores are bit-identical to the
  /// memo and memo-less paths.
  bool use_soa_fan = true;
  /// Arm-only block-path invalidation for batched move fans on graph
  /// workloads: ancestors on the frozen batch path that read exactly one
  /// changed child are recomputed as (frozen sibling fold) ∘ (changed
  /// arm) instead of re-folding every child. AND/OR branch folds are
  /// max/min — commutative and exact, so those nodes stay bit-identical.
  /// Sequence and XOR folds are sums, whose grouping changes; agreement
  /// with the full-closure path (and hence the Apply/Evaluate/Undo
  /// round-trip) is then 1e-9 relative, like the load index, and this
  /// flag keeps the exact legacy path in the same binary. Under a
  /// non-trivial mask only proven sibling-safe nodes (AND/OR branches)
  /// take the partial fold; every other node keeps the full ancestor
  /// closure, as DESIGN.md §9 requires.
  bool use_arm_path = true;
  /// Moves between re-anchoring passes (fresh cold-order summation of the
  /// running sums and a load-index rebuild). Tests shrink this to walk
  /// the re-anchor boundary cheaply.
  size_t reanchor_interval = 4096;
  /// Alive/down view of the server set (trivial by default). Binding with
  /// a non-trivial mask scores against the surviving subnetwork: every
  /// operation must sit on an alive server, moves to down servers are
  /// rejected (batch candidates score +infinity), pairs whose full-network
  /// route crosses a down server are severed, and the fairness penalty
  /// averages over the survivors only. The route tables themselves are
  /// built once for the full network and filtered — never rebuilt per
  /// mask. With use_load_index on, the index is rebuilt per mask epoch
  /// over the survivor cells only (bind and re-anchor), so the O(log N)
  /// fast path serves the masked penalty too.
  ServerMask mask;

  /// Per-server background loads (e.g. the other tenants of a shared farm,
  /// already QPS-weighted), added as constant offsets under every fairness
  /// query. Empty means zero everywhere; otherwise one finite entry per
  /// server of the bound network. The execution time is unaffected.
  std::vector<double> base_loads;

  /// Multiplier on the bound workflow's own load contributions — a
  /// tenant's QPS weight in shared-farm serving. Scales load (and hence
  /// the fairness penalty), never T_execute: a hotter tenant occupies more
  /// of every server it touches while each request still takes the same
  /// wall-clock path. Must be finite and > 0.
  double load_scale = 1.0;
};

class IncrementalEvaluator {
 public:
  /// Binds `model` to a copy of `initial` (which must be total and valid
  /// against the model's workflow/network) and performs the one cold
  /// evaluation pass. The model must outlive the evaluator. Warms the
  /// model's router so no later score pays first-touch routing.
  static Result<IncrementalEvaluator> Bind(const CostModel& model,
                                           Mapping initial,
                                           const CostOptions& options = {},
                                           const EvalTuning& tuning = {});

  /// Replaces the working mapping wholesale (one full evaluation pass) and
  /// clears the undo history.
  Status Rebind(Mapping mapping);

  /// Moves `op` to `server` and records an undo entry.
  Status Apply(OperationId op, ServerId server);

  /// Moves `op` to `server` WITHOUT recording undo history. For
  /// enumeration loops (odometers) that never back up.
  Status Move(OperationId op, ServerId server);

  /// Exchanges the servers of `a` and `b`; one undo entry.
  Status Swap(OperationId a, OperationId b);

  /// Reverts the most recent un-undone Apply/Swap.
  Status Undo();

  /// Number of revertible entries.
  size_t undo_depth() const { return undo_.size(); }

  /// Drops the undo history (e.g. after a search accepts a move for good).
  void ClearHistory() { undo_.clear(); }

  const Mapping& mapping() const { return mapping_; }
  const CostModel& model() const { return *model_; }
  const CostOptions& options() const { return options_; }
  const EvalTuning& tuning() const { return tuning_; }

  /// T_execute of the working mapping; fails when some message crosses
  /// disconnected servers (matching the cold evaluator).
  Result<double> ExecutionTime();

  /// Fairness penalty of the working mapping: O(log N) via the load index
  /// (default), O(N) over the load array when the index is tuned off.
  double TimePenalty() const;

  /// Probability-weighted per-server loads, indexed by ServerId::value.
  const std::vector<double>& Loads() const { return loads_; }

  /// Full breakdown under the bound CostOptions; counted as one delta
  /// evaluation.
  Result<CostBreakdown> Evaluate();

  /// Convenience: Evaluate().combined.
  Result<double> Combined();

  /// Batch-scores moving `op` to each of `servers`, writing the combined
  /// cost of each candidate into the matching `costs` slot. Candidates
  /// whose mapping routes a message between disconnected servers score
  /// +infinity (where Apply + Evaluate would fail instead). The dirty-path
  /// and edge bookkeeping for `op` is pinned once and reused across the
  /// whole fan, so a candidate costs one grid read per incident transition
  /// plus one sweep of the pre-resolved block path (arm-only where the
  /// node qualifies) — no undo records, no per-candidate dirty marking.
  /// Scores agree with the Apply / Evaluate / Undo round-trip bit-for-bit
  /// when use_arm_path is off (or the path has no partial-fold nodes), and
  /// to 1e-9 relative otherwise (the partial fold regroups sequence/XOR
  /// sums); each candidate counts as one delta evaluation, and the working
  /// state is left untouched.
  Status ScoreMoves(OperationId op, std::span<const ServerId> servers,
                    std::span<double> costs);

  /// Batch-scores swapping `a` with each of `partners` under the same
  /// contract as ScoreMoves (combined cost per candidate, +infinity for
  /// disconnected states, bit-parity with Swap + Evaluate + Undo, working
  /// state restored). Partners hosted on `a`'s own server score the
  /// current mapping (the swap is a no-op).
  Status ScoreSwaps(OperationId a, std::span<const OperationId> partners,
                    std::span<double> costs);

  const EvalCounters& counters() const { return counters_; }

 private:
  /// One cached T_comm term; `ok` is false when the hosting servers are
  /// disconnected.
  struct EdgeCache {
    double value = 0;
    bool ok = true;
  };

  /// One branch arm of a flattened branch block. `node` < 0 marks the
  /// empty branch (a single direct split->join message).
  struct Arm {
    int node = -1;
    TransitionId entry;
    TransitionId exit;
    TransitionId direct;
  };

  /// Flattened block-tree node with a cached execution time. Parents have
  /// smaller indices than their children, so a reverse index sweep
  /// recomputes children before parents.
  struct Node {
    const Block* block = nullptr;
    int parent = -1;
    bool dirty = false;
    bool ok = true;
    double value = 0;
    std::vector<int> children;            ///< kSequence element nodes.
    std::vector<TransitionId> seq_edges;  ///< Messages linking children.
    std::vector<Arm> arms;                ///< kBranch bodies.
  };

  struct ArmStep;  // defined with the batch scratch below

  IncrementalEvaluator(const CostModel& model, Mapping mapping,
                       const CostOptions& options, const EvalTuning& tuning);

  Status ColdStart();
  Status BuildPairTable();
  Status FlattenBlocks(const Block& block, int parent, int* out_index);

  Status CheckMove(OperationId op, ServerId server) const;
  void MoveInternal(OperationId op, ServerId to);
  void RefreshEdge(TransitionId t);
  EdgeCache ComputeEdge(TransitionId t) const;
  void MarkDirty(int node);
  void Flush();
  void RecomputeNode(Node& node);
  double EdgeContribution(TransitionId t, bool* ok) const;
  void Reanchor();

  /// Brings the working state to a clean, fully flushed base so batch
  /// scoring can snapshot it (mirrors what Evaluate would do first).
  void PrepareBatchBase();
  /// Collects `op`'s incident transitions into batch_edges_ (dedup'd).
  void CollectOpEdges(OperationId op);
  /// Saves the tcomm_ entries of batch_edges_ into batch_saved_edges_.
  void SaveBatchEdges();
  /// Resolves the ancestor-closed block path read by batch_edges_ and the
  /// tproc readers of `ops` into batch_path_ (descending index order) and
  /// snapshots those nodes' values. Graph workflows only. With `annotate`
  /// set (move fans, where one path serves the whole fan) and
  /// use_arm_path on, pure ancestors — nodes that are not direct readers
  /// of a changed input and have exactly one path child — are annotated
  /// with a frozen fold of their untouched siblings so the per-candidate
  /// sweep recombines them in O(1) instead of re-folding every child.
  void BuildBatchPath(std::span<const OperationId> ops, bool annotate);
  /// Whether `node` may take the arm-only partial fold: always under a
  /// trivial mask; under a non-trivial mask only for block kinds whose
  /// fold is proven sibling-safe — AND/OR branches, where max/min and the
  /// ok-AND are exact and order-independent (DESIGN.md §9 gate).
  bool AllowArmOnly(const Node& node) const;
  /// Fills batch_arm_ for the current batch_path_: resolves which path
  /// nodes read a moved op's T_proc, builds the per-node live-child /
  /// live-edge slices, and freezes the fan-invariant rest fold of every
  /// qualifying node. Move fans only (one path serves the whole fan).
  void AnnotateBatchPath(std::span<const OperationId> ops);
  /// Restores the tcomm_ caches and block-path snapshots taken by
  /// SaveBatchEdges / BuildBatchPath.
  void RestoreBatchState();
  /// Recomputes the frozen batch path against the provisionally mutated
  /// tcomm_/mapping state (full or partial per-node folds), leaving the
  /// result in nodes_[0].
  void SweepBatchPath();
  /// Combined cost from an execution sum and connectivity flag; queries
  /// TimePenalty() (which reads the pending-cell list).
  double CombineScore(double exec, bool ok) const;
  /// Same, with a precomputed fairness penalty (the batch two-cell path,
  /// where the candidate's loads are written directly and never enter the
  /// pending list).
  double CombineScore(double exec, bool ok, double penalty) const;
  /// Fairness penalty with loads_ already holding the candidate's two
  /// changed cells, queried as an explicit [from, to] patch against the
  /// index snapshot — the exact inputs (and bits) TimePenalty would hand
  /// PenaltyPatched had the cells gone through SetLoad. Requires
  /// use_load_index and an empty pending list (PrepareBatchBase flushed).
  double TwoCellPenalty(uint32_t from, uint32_t to) const;

  /// Writes one load cell, keeping the load index in sync. Every load
  /// mutation outside Reanchor (which rebuilds the index wholesale) must
  /// go through here.
  void SetLoad(uint32_t server, double value);

  /// Folds every pending load cell into the tree (Update per cell) so
  /// subsequent penalty queries patch nothing. Called when the pending set
  /// outgrows kMaxPendingLoads and before each batch fan, so per-candidate
  /// queries patch only the two cells the candidate itself touches.
  void FlushLoadIndex();

  /// Precomputes the SoA fan grid for the edges in batch_edges_ with `op`
  /// as the moving endpoint: fan_grid_{value_,ok_}[slot * N + dest] holds
  /// the T_comm term of batch edge `slot` with `op` landing on `dest` and
  /// every other operation at its base placement — the exact bits
  /// ComputeEdge would produce. One pass per slot over the flattened
  /// route-table rows (contiguous when `op` is the edge head).
  void BuildFanGrid(OperationId op);

  /// Reads the precomputed SoA grid term of batch edge `slot` with the
  /// moving operation landing on `dest`. Valid only after BuildFanGrid
  /// for the current fan, under the same base-placement precondition.
  EdgeCache GridEdge(size_t slot, ServerId dest) const {
    ++counters_.grid_hits;
    const size_t idx = slot * model_->network().num_servers() + dest.value;
    return EdgeCache{fan_grid_value_[idx], fan_grid_ok_[idx] != 0};
  }

  /// Opens a fresh per-fan memo epoch sized for `slots` batch edges.
  void BeginFanMemo(size_t slots);
  /// T_comm of batch edge `slot` (transition `t`) with the moving
  /// operation landing on `dest`, served from the per-fan memo when the
  /// same (slot, dest) was already computed this fan. Only valid while
  /// every other operation the edge reads sits at its base placement.
  EdgeCache MemoizedEdge(size_t slot, TransitionId t, ServerId dest);

  double TprocHere(OperationId op) const {
    return model_->TprocOn(op, mapping_.ServerOf(op));
  }

  /// Probability weight of `op`'s load contribution, including the
  /// tenant's load scale.
  double LoadProb(OperationId op) const {
    return tuning_.load_scale * model_->OperationProb(op);
  }

  const CostModel* model_;
  CostOptions options_;
  EvalTuning tuning_;
  Mapping mapping_;
  bool line_ = false;

  // All-pairs route table, row-major [from * N + to].
  std::vector<double> pair_prop_;
  std::vector<double> pair_secs_per_bit_;
  std::vector<char> pair_reachable_;

  std::vector<EdgeCache> tcomm_;  // per transition
  std::vector<double> loads_;    // per server
  // Alive server ids (ascending) when the mask is non-trivial; empty
  // otherwise. The masked TimePenalty sums over exactly these cells.
  std::vector<uint32_t> alive_servers_;

  // Order-statistic view of loads_, kept at a recent snapshot rather than
  // eagerly in sync: index_value_ mirrors what the tree holds per server,
  // dirty_loads_ lists the cells where loads_ has moved on (bounded by
  // kMaxPendingLoads before a flush folds them in). Penalty queries read
  // the tree once and correct for the pending cells, so tree surgery
  // happens only on flush and re-anchor, never per scored candidate.
  static constexpr size_t kMaxPendingLoads = 16;
  LoadIndex load_index_;
  std::vector<double> index_value_;   // per server: value the tree holds
  std::vector<uint8_t> load_dirty_;   // per server: pending membership
  std::vector<uint32_t> dirty_loads_; // pending cells, unordered

  // Line state.
  double line_exec_ = 0;
  size_t bad_edges_ = 0;

  // Graph state.
  std::vector<Node> nodes_;          // nodes_[0] is the root
  std::vector<int> tproc_reader_;    // op -> node reading its T_proc
  std::vector<int> edge_consumer_;   // transition -> node using its T_comm
  std::vector<int> dirty_;

  struct UndoRecord {
    OperationId a;
    ServerId a_old;
    OperationId b;  // invalid for single moves
    ServerId b_old;
  };
  std::vector<UndoRecord> undo_;

  // Batch-scoring scratch, reused across ScoreMoves/ScoreSwaps calls.
  struct NodeSnapshot {
    double value = 0;
    bool ok = true;
  };
  /// Partial-fold annotation for one batch-path node, resolved once per
  /// move fan. kFull nodes run RecomputeNode per candidate. kSequence /
  /// kBranch nodes recombine as frozen-rest ∘ live-parts: `rest` folds
  /// every input that cannot change during the fan (children off the
  /// path, edges outside the batch set, sibling arms), frozen at
  /// annotation time, while the live parts — path children and batch
  /// edges — are re-read per candidate from the freshly swept nodes_ /
  /// tcomm_ state. A node qualifies only when it reads no moved op's
  /// T_proc (so its own split/join/leaf terms are fan-invariant) and, for
  /// branches, when every changed input falls inside one arm.
  struct ArmStep {
    enum class Mode : uint8_t { kFull, kSequence, kBranch };
    Mode mode = Mode::kFull;
    OperationType branch_type = OperationType::kOperational;
    double rest = 0;         ///< Frozen fold of the fan-invariant inputs.
    bool rest_ok = true;
    bool rest_empty = true;  ///< Branch: no frozen sibling arms.
    // kSequence: live inputs as ranges into the shared scratch arrays.
    int child_begin = 0, child_end = 0;  ///< batch_live_children_ slice.
    int edge_begin = 0, edge_end = 0;    ///< batch_live_edges_ slice.
    // kBranch: the one dirty arm, re-read live per candidate.
    int arm_child = -1;  ///< nodes_ index of the dirty arm's body.
    TransitionId entry;  ///< Dirty arm's entry transition.
    TransitionId exit;   ///< Dirty arm's exit transition.
    double prob = 0;     ///< XOR: dirty arm's branch probability.
    double pre = 0;      ///< T_proc of the split op (fan-invariant).
    double post = 0;     ///< T_proc of the join op (fan-invariant).
  };

  std::vector<TransitionId> batch_edges_;
  std::vector<EdgeCache> batch_saved_edges_;
  std::vector<int> batch_path_;              // descending node indices
  std::vector<NodeSnapshot> batch_saved_nodes_;
  std::vector<ArmStep> batch_arm_;           // parallel to batch_path_
  std::vector<int> node_pos_;     // node index -> position in batch_path_
  std::vector<char> batch_touched_;      // per path node: reads moved T_proc
  std::vector<int> batch_child_count_;   // per path node: CSR child offsets
  std::vector<int> batch_edge_count_;    // per path node: CSR edge offsets
  std::vector<int> batch_live_children_; // path children, grouped per node
  std::vector<TransitionId> batch_live_edges_;  // batch edges per node

  // SoA fan grid, slot-major [slot * N + dest]; valid for the current fan
  // while every non-moving operation sits at its base placement.
  std::vector<double> fan_grid_value_;
  std::vector<char> fan_grid_ok_;

  // Per-fan (edge slot, landing server) memo: a slot-major table of
  // cached T_comm terms, invalidated wholesale by bumping the epoch.
  std::vector<EdgeCache> fan_memo_;
  std::vector<uint32_t> fan_memo_epoch_;
  uint32_t memo_epoch_ = 0;

  size_t moves_since_anchor_ = 0;
  // Mutable: TimePenalty() is logically const but tallies its fast/full
  // split into the counters.
  mutable EvalCounters counters_;
};

}  // namespace wsflow

#endif  // WSFLOW_COST_INCREMENTAL_H_
