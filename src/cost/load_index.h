// wsflow: order-statistic index over per-server loads.
//
// The fairness half of the paper's objective is
//
//   TimePenalty = Sum over servers of |Load(s) - avg| / 2
//
// which a naive pass recomputes in O(N) per score even though a move
// changes only two load cells. LoadIndex keeps the N loads in an
// augmented balanced tree (a treap keyed by (load, server) with subtree
// (count, sum) aggregates), so the penalty folds out of two prefix
// aggregates at the average:
//
//   below = avg * count_below - sum_below
//   above = (total - sum_below) - avg * (count - count_below)
//   TimePenalty = (below + above) / 2
//
// with O(log N) point updates on the two cells a move touches.
//
// Point updates cost two split/merge passes, which is far more than the
// descent a query costs, so the owner keeps the tree at a recent snapshot
// of the load array and queries through PenaltyPatched: one descent over
// the snapshot plus an O(k) correction for the k cells that currently
// differ from it. Batch scoring and rejected search proposals then never
// touch the tree at all; pending cells are folded in (Update per cell)
// only when the patch set grows past a small cap.
//
// Determinism contract: node priorities are hashed from the key bits, so
// the tree shape — and therefore every floating-point accumulation order
// the index produces — is a pure function of the stored (load, server)
// set, never of the update history. Two evaluators holding the same loads
// return bit-identical penalties regardless of how they got there, which
// is what keeps batched scoring bit-identical to the Apply/Evaluate/Undo
// round-trip and `annealing-par` winners byte-identical at any thread
// count. Against the O(N) pass the index agrees to 1e-9 relative
// tolerance (same terms, different summation order); exact parity with
// the cold order is restored whenever the owner rebuilds the index at a
// re-anchor point.

#ifndef WSFLOW_COST_LOAD_INDEX_H_
#define WSFLOW_COST_LOAD_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace wsflow {

class LoadIndex {
 public:
  LoadIndex() = default;

  /// Rebuilds the tree from `loads` (position = ServerId::value),
  /// discarding any previous contents. Called at bind and at re-anchor
  /// points, where the owner has just re-summed the loads in cold
  /// evaluation order.
  void Rebuild(std::span<const double> loads);

  /// Rebuilds the tree over a subset of cells: only `servers` (ascending
  /// ids into the full `loads` array) are indexed. This is the per-mask
  /// survivor view — Penalty() then averages and deviates over exactly
  /// the indexed cells, matching the masked O(N) fairness statistic.
  /// Updates and patches may only reference indexed servers.
  void Rebuild(std::span<const double> loads,
               std::span<const uint32_t> servers);

  /// Replaces server `s`'s load. `old_load` must be the exact value
  /// (same bits up to -0.0 == 0.0) passed for `s` at the last Rebuild or
  /// Update; the caller keeps the authoritative load array.
  void Update(uint32_t server, double old_load, double new_load);

  /// Number of indexed servers.
  size_t size() const { return root_ < 0 ? 0 : nodes_[root_].count; }

  /// Sum of all loads, accumulated in tree order.
  double TotalLoad() const { return root_ < 0 ? 0.0 : nodes_[root_].sum; }

  /// TimePenalty of the indexed loads; 0 for an empty index.
  double Penalty() const;

  /// TimePenalty of the indexed loads with the cells in `servers`
  /// substituted: the tree is assumed to hold `stored[s]` for each such
  /// cell while the authoritative value is `current[s]` (both spans are
  /// full arrays indexed by server). One descent plus O(|servers|)
  /// corrections; the tree itself is not modified.
  double PenaltyPatched(std::span<const uint32_t> servers,
                        std::span<const double> stored,
                        std::span<const double> current) const;

 private:
  struct Node {
    double load = 0;
    uint32_t server = 0;
    uint64_t priority = 0;
    int left = -1;
    int right = -1;
    int count = 1;     ///< Subtree size.
    double sum = 0;    ///< Subtree load sum (tree-order accumulation).
  };

  static uint64_t Priority(double load, uint32_t server);
  /// Count and tree-order sum of the stored loads strictly below
  /// `threshold` (one root-to-leaf descent).
  void BelowPrefix(double threshold, int64_t* count, double* sum) const;
  bool KeyLess(double load_a, uint32_t server_a, const Node& b) const;
  int NewNode(double load, uint32_t server);
  void Pull(int t);
  /// Splits `t` into keys < (load, server) and the rest.
  void Split(int t, double load, uint32_t server, int* lo, int* hi);
  int Merge(int lo, int hi);
  int InsertAt(int t, int node);
  int RemoveAt(int t, double load, uint32_t server);

  std::vector<Node> nodes_;
  std::vector<int> free_;
  int root_ = -1;
};

}  // namespace wsflow

#endif  // WSFLOW_COST_LOAD_INDEX_H_
