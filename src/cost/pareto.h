// wsflow: Pareto utilities over the (T_execute, TimePenalty) plane.
//
// The paper's two measures are antagonistic (§3.1); its figures plot
// solutions as points where "the closer a solution is to (0,0), the better".
// These helpers compute dominance, Pareto fronts and distance scores for the
// experiment reports.

#ifndef WSFLOW_COST_PARETO_H_
#define WSFLOW_COST_PARETO_H_

#include <cstddef>
#include <vector>

namespace wsflow {

/// One solution in objective space.
struct ObjectivePoint {
  double execution_time = 0;
  double time_penalty = 0;

  friend bool operator==(const ObjectivePoint& a, const ObjectivePoint& b) {
    return a.execution_time == b.execution_time &&
           a.time_penalty == b.time_penalty;
  }
};

/// True when `a` dominates `b`: no worse in both objectives, strictly
/// better in at least one.
bool Dominates(const ObjectivePoint& a, const ObjectivePoint& b);

/// Indices of the non-dominated points, in input order.
std::vector<size_t> ParetoFrontIndices(const std::vector<ObjectivePoint>& pts);

/// Euclidean distance from the origin (the paper's "closer to (0,0)"
/// reading); useful as a scalar ranking consistent with the figures.
double DistanceToOrigin(const ObjectivePoint& p);

/// Weighted sum w_e * execution_time + w_f * time_penalty.
double WeightedSum(const ObjectivePoint& p, double execution_weight,
                   double fairness_weight);

}  // namespace wsflow

#endif  // WSFLOW_COST_PARETO_H_
