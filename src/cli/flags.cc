#include "src/cli/flags.h"

#include <sstream>
#include <thread>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace wsflow::cli {

void FlagSet::AddString(const std::string& name, std::string default_value,
                        std::string help) {
  Flag f;
  f.type = Type::kString;
  f.help = std::move(help);
  f.string_value = std::move(default_value);
  WSFLOW_CHECK(flags_.emplace(name, std::move(f)).second)
      << "duplicate flag --" << name;
}

void FlagSet::AddDouble(const std::string& name, double default_value,
                        std::string help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = std::move(help);
  f.double_value = default_value;
  WSFLOW_CHECK(flags_.emplace(name, std::move(f)).second)
      << "duplicate flag --" << name;
}

void FlagSet::AddInt(const std::string& name, int64_t default_value,
                     std::string help) {
  Flag f;
  f.type = Type::kInt;
  f.help = std::move(help);
  f.int_value = default_value;
  WSFLOW_CHECK(flags_.emplace(name, std::move(f)).second)
      << "duplicate flag --" << name;
}

void FlagSet::AddBool(const std::string& name, bool default_value,
                      std::string help) {
  Flag f;
  f.type = Type::kBool;
  f.help = std::move(help);
  f.bool_value = default_value;
  WSFLOW_CHECK(flags_.emplace(name, std::move(f)).second)
      << "duplicate flag --" << name;
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& f = it->second;
  switch (f.type) {
    case Type::kString:
      f.string_value = value;
      break;
    case Type::kDouble: {
      Result<double> parsed = ParseDouble(value);
      if (!parsed.ok()) {
        return parsed.status().WithContext("--" + name);
      }
      f.double_value = *parsed;
      break;
    }
    case Type::kInt: {
      Result<int64_t> parsed = ParseInt64(value);
      if (!parsed.ok()) {
        return parsed.status().WithContext("--" + name);
      }
      f.int_value = *parsed;
      break;
    }
    case Type::kBool:
      if (value == "true" || value == "1") {
        f.bool_value = true;
      } else if (value == "false" || value == "0") {
        f.bool_value = false;
      } else {
        return Status::InvalidArgument("--" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      break;
  }
  f.set = true;
  return Status::OK();
}

Result<std::vector<std::string>> FlagSet::Parse(
    const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!StartsWith(arg, "--")) {
      positional.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      WSFLOW_RETURN_IF_ERROR(
          SetValue(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body);
    }
    if (it->second.type == Type::kBool) {
      // Bare boolean form: --flag means true.
      it->second.bool_value = true;
      it->second.set = true;
      continue;
    }
    if (i + 1 >= args.size()) {
      return Status::InvalidArgument("flag --" + body + " needs a value");
    }
    WSFLOW_RETURN_IF_ERROR(SetValue(body, args[++i]));
  }
  return positional;
}

const FlagSet::Flag& FlagSet::Get(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  WSFLOW_CHECK(it != flags_.end()) << "undeclared flag --" << name;
  WSFLOW_CHECK(it->second.type == type) << "flag --" << name << " type";
  return it->second;
}

const std::string& FlagSet::GetString(const std::string& name) const {
  return Get(name, Type::kString).string_value;
}

double FlagSet::GetDouble(const std::string& name) const {
  return Get(name, Type::kDouble).double_value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return Get(name, Type::kInt).int_value;
}

bool FlagSet::GetBool(const std::string& name) const {
  return Get(name, Type::kBool).bool_value;
}

bool FlagSet::WasSet(const std::string& name) const {
  auto it = flags_.find(name);
  WSFLOW_CHECK(it != flags_.end()) << "undeclared flag --" << name;
  return it->second.set;
}

std::string FlagSet::Help() const {
  std::ostringstream os;
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: ";
    switch (flag.type) {
      case Type::kString:
        os << "'" << flag.string_value << "'";
        break;
      case Type::kDouble:
        os << FormatDouble(flag.double_value, 6);
        break;
      case Type::kInt:
        os << flag.int_value;
        break;
      case Type::kBool:
        os << (flag.bool_value ? "true" : "false");
        break;
    }
    os << ")\n      " << flag.help << "\n";
  }
  return os.str();
}

int64_t DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int64_t>(hw);
}

void AddThreadsFlag(FlagSet* flags) {
  flags->AddInt("threads", DefaultThreadCount(),
                "worker threads (default: hardware concurrency)");
}

Result<std::vector<double>> ParseDoubleList(const std::string& csv) {
  std::vector<double> out;
  for (const std::string& field : Split(csv, ',')) {
    WSFLOW_ASSIGN_OR_RETURN(double value, ParseDouble(field));
    out.push_back(value);
  }
  return out;
}

}  // namespace wsflow::cli
