// wsflow: minimal command-line flag parsing for the wsflow CLI.
//
// Supports `--name value`, `--name=value` and boolean `--name` forms plus
// positional arguments. Flags are declared up front with defaults and help
// text; unknown flags are errors. No global state — each command builds its
// own FlagSet, which keeps the parser unit-testable.

#ifndef WSFLOW_CLI_FLAGS_H_
#define WSFLOW_CLI_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace wsflow::cli {

class FlagSet {
 public:
  /// Declares flags; duplicate names abort (programming error).
  void AddString(const std::string& name, std::string default_value,
                 std::string help);
  void AddDouble(const std::string& name, double default_value,
                 std::string help);
  void AddInt(const std::string& name, int64_t default_value,
              std::string help);
  void AddBool(const std::string& name, bool default_value, std::string help);

  /// Parses `args` (not including the program/command name). Returns the
  /// positional arguments in order. Fails on unknown flags, missing values
  /// or unparsable numbers.
  Result<std::vector<std::string>> Parse(
      const std::vector<std::string>& args);

  /// Typed access after Parse (or defaults before). Unknown names abort.
  const std::string& GetString(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True when the flag was explicitly set on the command line.
  bool WasSet(const std::string& name) const;

  /// One help line per flag: "--name (default: ...)  help".
  std::string Help() const;

 private:
  enum class Type { kString, kDouble, kInt, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string string_value;
    double double_value = 0;
    int64_t int_value = 0;
    bool bool_value = false;
    bool set = false;
  };

  Status SetValue(const std::string& name, const std::string& value);
  const Flag& Get(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
};

/// Parses a comma-separated list of doubles ("1e9,2e9,3e9").
Result<std::vector<double>> ParseDoubleList(const std::string& csv);

/// Hardware concurrency clamped to at least 1 — the default of --threads.
int64_t DefaultThreadCount();

/// Declares the shared `--threads` flag (worker thread count, default:
/// hardware concurrency) on `flags`.
void AddThreadsFlag(FlagSet* flags);

}  // namespace wsflow::cli

#endif  // WSFLOW_CLI_FLAGS_H_
