#include "src/cli/commands.h"

#include <chrono>
#include <deque>
#include <future>
#include <iomanip>
#include <memory>
#include <sstream>
#include <thread>

#include <fstream>

#include "src/cli/flags.h"
#include "src/common/backoff.h"
#include "src/common/random.h"
#include "src/common/string_util.h"
#include "src/deploy/repair.h"
#include "src/serve/fingerprint.h"
#include "src/serve/health.h"
#include "src/serve/service.h"
#include "src/sim/fault_sim.h"
#include "src/sim/faults.h"
#include "src/workflow/bpel_import.h"
#include "src/cost/cost_model.h"
#include "src/cost/response_time.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/annealing.h"
#include "src/deploy/astar.h"
#include "src/deploy/failover.h"
#include "src/deploy/parallel.h"
#include "src/exp/config.h"
#include "src/exp/report.h"
#include "src/fleet/controller.h"
#include "src/exp/runner.h"
#include "src/exp/sampling.h"
#include "src/network/serialization.h"
#include "src/sim/simulator.h"
#include "src/workflow/dot.h"
#include "src/workflow/generator.h"
#include "src/workflow/metrics.h"
#include "src/workflow/serialization.h"
#include "src/workflow/validate.h"

namespace wsflow::cli {

namespace {

/// Loaded (workflow, network, profile) triple shared by most commands.
struct Inputs {
  Workflow workflow;
  Network network;
  std::optional<ExecutionProfile> profile;

  const ExecutionProfile* profile_ptr() const {
    return profile ? &*profile : nullptr;
  }
};

void AddInputFlags(FlagSet* flags) {
  flags->AddString("workflow", "",
                   "path to the workflow XML — flat <workflow> or "
                   "structured <process> form (required)");
  flags->AddString("network", "", "path to the network XML (required)");
}

/// Loads either workflow format by dispatching on the document's root tag.
Result<Workflow> LoadAnyWorkflow(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  WSFLOW_ASSIGN_OR_RETURN(XmlNode root, ParseXml(buffer.str()));
  if (root.tag() == "process") return WorkflowFromProcessXml(root);
  return WorkflowFromXml(root);
}

Result<Inputs> LoadInputs(const FlagSet& flags) {
  if (flags.GetString("workflow").empty()) {
    return Status::InvalidArgument("--workflow is required");
  }
  if (flags.GetString("network").empty()) {
    return Status::InvalidArgument("--network is required");
  }
  Inputs in;
  WSFLOW_ASSIGN_OR_RETURN(in.workflow,
                          LoadAnyWorkflow(flags.GetString("workflow")));
  WSFLOW_ASSIGN_OR_RETURN(in.network,
                          LoadNetwork(flags.GetString("network")));
  WSFLOW_RETURN_IF_ERROR(ValidateAll(in.workflow));
  if (!in.workflow.IsLine()) {
    WSFLOW_ASSIGN_OR_RETURN(ExecutionProfile profile,
                            ComputeExecutionProfile(in.workflow));
    in.profile = std::move(profile);
  }
  return in;
}

DeployContext MakeContext(const Inputs& in, uint64_t seed) {
  DeployContext ctx;
  ctx.workflow = &in.workflow;
  ctx.network = &in.network;
  ctx.profile = in.profile_ptr();
  ctx.seed = seed;
  return ctx;
}

void PrintCosts(std::ostream& out, const CostBreakdown& cost) {
  out << "T_execute:    " << FormatSeconds(cost.execution_time) << "\n"
      << "TimePenalty:  " << FormatSeconds(cost.time_penalty) << "\n"
      << "combined:     " << FormatSeconds(cost.combined) << "\n";
}

Result<WorkloadKind> ParseWorkload(const std::string& name) {
  if (name == "line") return WorkloadKind::kLine;
  if (name == "bushy") return WorkloadKind::kBushyGraph;
  if (name == "lengthy") return WorkloadKind::kLengthyGraph;
  if (name == "hybrid") return WorkloadKind::kHybridGraph;
  return Status::InvalidArgument("unknown --workload '" + name + "'");
}

Result<ExperimentConfig> MakeClassConfig(const std::string& cls,
                                         WorkloadKind workload) {
  if (cls == "a") return MakeClassAConfig(workload);
  if (cls == "b") return MakeClassBConfig(workload);
  if (cls == "c") return MakeClassCConfig(workload);
  return Status::InvalidArgument("unknown --class '" + cls + "'");
}

}  // namespace

Result<Mapping> ParseMappingSpec(const std::string& spec,
                                 size_t num_operations, size_t num_servers) {
  std::vector<std::string> fields = Split(spec, ',');
  if (fields.size() != num_operations) {
    return Status::InvalidArgument(
        "mapping spec has " + std::to_string(fields.size()) +
        " entries, workflow has " + std::to_string(num_operations) +
        " operations");
  }
  Mapping m(num_operations);
  for (size_t i = 0; i < fields.size(); ++i) {
    WSFLOW_ASSIGN_OR_RETURN(int64_t server, ParseInt64(fields[i]));
    if (server < 0 || static_cast<size_t>(server) >= num_servers) {
      return Status::OutOfRange("server index " + std::to_string(server) +
                                " out of range [0, " +
                                std::to_string(num_servers) + ")");
    }
    m.Assign(OperationId(static_cast<uint32_t>(i)),
             ServerId(static_cast<uint32_t>(server)));
  }
  return m;
}

std::string FormatMappingSpec(const Mapping& m) {
  std::string out;
  for (size_t i = 0; i < m.num_operations(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(m.ServerOf(OperationId(static_cast<uint32_t>(i)))
                              .value);
  }
  return out;
}

Status CmdGenerate(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags;
  flags.AddString("type", "line", "line | bushy | lengthy | hybrid");
  flags.AddInt("ops", 19, "number of operations");
  flags.AddInt("seed", 1, "generator seed");
  flags.AddString("out", "", "output workflow XML path (required)");
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;
  if (flags.GetString("out").empty()) {
    return Status::InvalidArgument("--out is required");
  }
  const size_t ops = static_cast<size_t>(flags.GetInt("ops"));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  // Table 6 distributions drive the synthetic quantities.
  ExperimentConfig table6 = MakeClassCConfig(WorkloadKind::kLine);
  Workflow workflow;
  const std::string& type = flags.GetString("type");
  if (type == "line") {
    LineWorkflowParams params;
    params.num_operations = ops;
    params.cycles = table6.operation_cycles.ToSampler();
    params.message_bits = table6.message_bits.ToSampler();
    WSFLOW_ASSIGN_OR_RETURN(workflow, GenerateLineWorkflow(params, &rng));
  } else {
    GraphShape shape;
    if (type == "bushy") {
      shape = GraphShape::kBushy;
    } else if (type == "lengthy") {
      shape = GraphShape::kLengthy;
    } else if (type == "hybrid") {
      shape = GraphShape::kHybrid;
    } else {
      return Status::InvalidArgument("unknown --type '" + type + "'");
    }
    RandomGraphParams params = ParamsForShape(shape, ops);
    params.cycles = table6.operation_cycles.ToSampler();
    params.message_bits = table6.message_bits.ToSampler();
    WSFLOW_ASSIGN_OR_RETURN(workflow,
                            GenerateRandomGraphWorkflow(params, &rng));
  }
  WSFLOW_RETURN_IF_ERROR(SaveWorkflow(workflow, flags.GetString("out")));
  out << "wrote " << type << " workflow with " << workflow.num_operations()
      << " operations (" << workflow.NumDecisionNodes() << " decision) to "
      << flags.GetString("out") << "\n";
  return Status::OK();
}

Status CmdMakeNetwork(const std::vector<std::string>& args,
                      std::ostream& out) {
  FlagSet flags;
  flags.AddString("kind", "bus", "bus | line | star | ring | fat-tree | "
                  "hier");
  flags.AddString("powers", "1e9,2e9,3e9,2e9,1e9",
                  "comma-separated server powers in Hz (fat-tree/hier: one "
                  "broadcast value or one per server in canonical order)");
  flags.AddString("speeds", "1e8",
                  "link speeds bps: one value for bus, two for fat-tree "
                  "(edge,spine), three for hier (cluster,region,wan), a "
                  "per-link list otherwise");
  flags.AddDouble("propagation", 0.0, "per-link propagation delay, seconds "
                  "(bus/line/star/ring; the WAN kinds use per-tier "
                  "defaults)");
  flags.AddInt("spines", 2, "fat-tree: spine servers");
  flags.AddInt("racks", 2, "fat-tree: racks");
  flags.AddInt("rack-size", 4, "fat-tree: servers per rack");
  flags.AddInt("regions", 2, "hier: regions");
  flags.AddInt("clusters", 2, "hier: clusters per region");
  flags.AddInt("cluster-size", 3, "hier: servers per cluster");
  flags.AddString("out", "", "output network XML path (required)");
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;
  if (flags.GetString("out").empty()) {
    return Status::InvalidArgument("--out is required");
  }
  WSFLOW_ASSIGN_OR_RETURN(std::vector<double> powers,
                          ParseDoubleList(flags.GetString("powers")));
  WSFLOW_ASSIGN_OR_RETURN(std::vector<double> speeds,
                          ParseDoubleList(flags.GetString("speeds")));
  double propagation = flags.GetDouble("propagation");

  Network network;
  const std::string& kind = flags.GetString("kind");
  if (kind == "bus") {
    if (speeds.size() != 1) {
      return Status::InvalidArgument("bus networks take one --speeds value");
    }
    WSFLOW_ASSIGN_OR_RETURN(network,
                            MakeBusNetwork(powers, speeds[0], propagation));
  } else if (kind == "line") {
    WSFLOW_ASSIGN_OR_RETURN(network,
                            MakeLineNetwork(powers, speeds, propagation));
  } else if (kind == "star") {
    WSFLOW_ASSIGN_OR_RETURN(network,
                            MakeStarNetwork(powers, speeds, propagation));
  } else if (kind == "ring") {
    WSFLOW_ASSIGN_OR_RETURN(network,
                            MakeRingNetwork(powers, speeds, propagation));
  } else if (kind == "fat-tree") {
    if (speeds.size() != 2) {
      return Status::InvalidArgument(
          "fat-tree takes two --speeds values: edge,spine");
    }
    FatTreeOptions opts;
    opts.spines = static_cast<size_t>(flags.GetInt("spines"));
    opts.racks = static_cast<size_t>(flags.GetInt("racks"));
    opts.rack_size = static_cast<size_t>(flags.GetInt("rack-size"));
    opts.powers_hz = powers;
    opts.edge_speed_bps = speeds[0];
    opts.spine_speed_bps = speeds[1];
    WSFLOW_ASSIGN_OR_RETURN(network, MakeFatTreeNetwork(opts));
  } else if (kind == "hier") {
    if (speeds.size() != 3) {
      return Status::InvalidArgument(
          "hier takes three --speeds values: cluster,region,wan");
    }
    HierarchicalOptions opts;
    opts.regions = static_cast<size_t>(flags.GetInt("regions"));
    opts.clusters_per_region = static_cast<size_t>(flags.GetInt("clusters"));
    opts.cluster_size = static_cast<size_t>(flags.GetInt("cluster-size"));
    opts.powers_hz = powers;
    opts.cluster_speed_bps = speeds[0];
    opts.region_speed_bps = speeds[1];
    opts.wan_speed_bps = speeds[2];
    WSFLOW_ASSIGN_OR_RETURN(network, MakeHierarchicalNetwork(opts));
  } else {
    return Status::InvalidArgument("unknown --kind '" + kind + "'");
  }
  WSFLOW_RETURN_IF_ERROR(SaveNetwork(network, flags.GetString("out")));
  out << "wrote " << kind << " network with " << network.num_servers()
      << " servers to " << flags.GetString("out") << "\n";
  return Status::OK();
}

Status CmdDeploy(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags;
  AddInputFlags(&flags);
  flags.AddString("algorithm", "heavy-ops", "registry name (see "
                  "list-algorithms)");
  flags.AddInt("seed", 1, "seed for randomized steps");
  flags.AddDouble("exec-weight", 0.5, "objective weight of T_execute");
  flags.AddDouble("fair-weight", 0.5, "objective weight of TimePenalty");
  flags.AddInt("chains", 8,
               "chains / restarts for annealing-par and climb-par");
  AddThreadsFlag(&flags);
  flags.AddBool("stats", false,
                "print search statistics (annealing, the -par searches and "
                "the astar solvers)");
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;
  WSFLOW_ASSIGN_OR_RETURN(Inputs in, LoadInputs(flags));
  DeployContext ctx = MakeContext(in, static_cast<uint64_t>(
                                           flags.GetInt("seed")));
  ctx.cost_options.execution_weight = flags.GetDouble("exec-weight");
  ctx.cost_options.fairness_weight = flags.GetDouble("fair-weight");

  const std::string& algo_name = flags.GetString("algorithm");
  const bool parallel_algo =
      algo_name == "annealing-par" || algo_name == "climb-par";
  if (flags.WasSet("chains") && !parallel_algo) {
    return Status::InvalidArgument(
        "--chains only applies to annealing-par and climb-par");
  }
  const bool astar_algo = algo_name == "astar" || algo_name == "astar-anytime";
  if (flags.GetBool("stats") && !parallel_algo && !astar_algo &&
      algo_name != "annealing") {
    return Status::InvalidArgument(
        "--stats is supported for annealing, annealing-par, climb-par, "
        "astar and astar-anytime");
  }

  Mapping m;
  if (parallel_algo) {
    if (flags.GetInt("chains") < 1) {
      return Status::InvalidArgument("--chains must be at least 1");
    }
    ParallelSearchOptions options;
    options.chains = static_cast<size_t>(flags.GetInt("chains"));
    options.threads = static_cast<size_t>(flags.GetInt("threads"));
    ParallelSearchStats stats;
    if (algo_name == "annealing-par") {
      WSFLOW_ASSIGN_OR_RETURN(
          m, ParallelAnnealingAlgorithm(options).RunWithStats(ctx, &stats));
    } else {
      WSFLOW_ASSIGN_OR_RETURN(
          m, ParallelHillClimbAlgorithm(options).RunWithStats(ctx, &stats));
    }
    if (flags.GetBool("stats")) {
      out << "chains:       " << stats.chains << " on " << stats.threads
          << " thread(s), winner chain " << stats.winner_chain << "\n";
      if (algo_name == "annealing-par") {
        out << "proposals:    " << stats.proposals << " (" << stats.accepted
            << " accepted, " << stats.exchanges << " exchanges over "
            << stats.rounds << " rounds)\n";
      } else {
        out << "climb:        " << stats.steps << " steps, "
            << stats.evaluations << " candidates\n";
      }
      out << "evaluations:  " << stats.full_evaluations << " full, "
          << stats.delta_evaluations << " delta\n";
      out << "penalty:      " << stats.penalty_fast << " fast, "
          << stats.penalty_full << " full\n";
      out << "edge memo:    " << stats.edge_memo_hits << " hits, "
          << stats.edge_memo_misses << " misses\n";
      out << "soa grid:     " << stats.soa_fans << " fans, "
          << stats.soa_candidates << " candidates, " << stats.grid_cells
          << " cells, " << stats.grid_hits << " hits\n";
      out << "block path:   " << stats.arm_path_nodes << " arm-only, "
          << stats.full_path_nodes << " full\n";
      out << "search cost:  " << FormatSeconds(stats.initial_cost) << " -> "
          << FormatSeconds(stats.best_cost) << "\n";
    }
  } else if (flags.GetBool("stats") && astar_algo) {
    AStarOptions options;
    options.anytime = algo_name == "astar-anytime";
    AStarStats stats;
    WSFLOW_ASSIGN_OR_RETURN(
        m, AStarAlgorithm(options).RunWithStats(ctx, &stats));
    out << "expanded:     " << stats.expanded << "\n";
    out << "generated:    " << stats.generated << "\n";
    out << "pruned:       " << stats.pruned_bound << " by bound, "
        << stats.pruned_dominance << " by dominance\n";
    out << "tt hits:      " << stats.tt_hits << "\n";
    out << "optimal:      " << (stats.proven_optimal ? "proven" : "not proven")
        << "\n";
    if (options.anytime && stats.incumbent_cost <
                               std::numeric_limits<double>::infinity()) {
      out << "incumbent:    " << FormatSeconds(stats.incumbent_cost) << " -> "
          << FormatSeconds(stats.best_cost) << "\n";
    }
  } else if (flags.GetBool("stats") && algo_name == "annealing") {
    AnnealingStats stats;
    WSFLOW_ASSIGN_OR_RETURN(
        m, AnnealingAlgorithm().RunWithStats(ctx, &stats));
    out << "proposals:    " << stats.proposals << " (" << stats.accepted
        << " accepted)\n";
    out << "evaluations:  " << stats.full_evaluations << " full, "
        << stats.delta_evaluations << " delta\n";
    out << "penalty:      " << stats.penalty_fast << " fast, "
        << stats.penalty_full << " full\n";
    out << "search cost:  " << FormatSeconds(stats.initial_cost) << " -> "
        << FormatSeconds(stats.best_cost) << "\n";
  } else {
    WSFLOW_ASSIGN_OR_RETURN(m, RunAlgorithm(algo_name, ctx));
  }
  out << "mapping: " << m.ToString(in.workflow, in.network) << "\n";
  out << "spec:    " << FormatMappingSpec(m) << "\n";
  CostModel model(in.workflow, in.network, in.profile_ptr());
  WSFLOW_ASSIGN_OR_RETURN(CostBreakdown cost,
                          model.Evaluate(m, ctx.cost_options));
  PrintCosts(out, cost);
  return Status::OK();
}

Status CmdEvaluate(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags;
  AddInputFlags(&flags);
  flags.AddString("mapping", "",
                  "server index per operation, comma separated (required)");
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;
  WSFLOW_ASSIGN_OR_RETURN(Inputs in, LoadInputs(flags));
  if (flags.GetString("mapping").empty()) {
    return Status::InvalidArgument("--mapping is required");
  }
  WSFLOW_ASSIGN_OR_RETURN(
      Mapping m, ParseMappingSpec(flags.GetString("mapping"),
                                  in.workflow.num_operations(),
                                  in.network.num_servers()));
  CostModel model(in.workflow, in.network, in.profile_ptr());
  WSFLOW_ASSIGN_OR_RETURN(CostBreakdown cost, model.Evaluate(m));
  PrintCosts(out, cost);
  std::vector<double> loads = model.Loads(m);
  for (const Server& s : in.network.servers()) {
    out << "load " << s.name() << ": "
        << FormatSeconds(loads[s.id().value]) << "\n";
  }
  return Status::OK();
}

Status CmdSimulate(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags;
  AddInputFlags(&flags);
  flags.AddString("algorithm", "heavy-ops", "deployment algorithm");
  flags.AddString("mapping", "", "explicit mapping spec (overrides "
                  "--algorithm)");
  flags.AddInt("runs", 1000, "Monte-Carlo runs");
  flags.AddInt("seed", 1, "simulation seed");
  flags.AddBool("trace", false, "print the first run's event trace");
  flags.AddBool("trace-json", false,
                "dump the first run's trace as JSON instead of the report");
  flags.AddBool("server-contention", false,
                "serialize operations sharing a server");
  flags.AddBool("bus-contention", false, "serialize bus transfers");
  // Fault injection: a generated schedule (--faults/--slowdowns) or a
  // committed one (--faults-file, the FaultSchedule::ToString dialect).
  flags.AddInt("faults", 0, "crash/recover pairs to inject");
  flags.AddInt("slowdowns", 0, "slowdown events to inject");
  flags.AddInt("fault-seed", 0, "fault schedule generation seed");
  flags.AddDouble("fault-horizon", 0,
                  "fault schedule horizon in seconds (0 = 2x the analytic "
                  "makespan)");
  flags.AddString("faults-file", "",
                  "replay a fault schedule file instead of generating one");
  flags.AddString("policy", "retry+redispatch",
                  "loss recovery: none|retry|redispatch|retry+redispatch");
  flags.AddInt("retries", 5, "backoff retry budget per lost operation");
  flags.AddDouble("redispatch-timeout", 0.05,
                  "seconds before a lost operation is re-dispatched");
  flags.AddBool("repair", false,
                "invoke RepairMapping at crash epochs and resume cold "
                "operations on the patched deployment");
  flags.AddBool("stats", false, "print per-run fault recovery statistics");
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;
  WSFLOW_ASSIGN_OR_RETURN(Inputs in, LoadInputs(flags));

  Mapping m;
  if (!flags.GetString("mapping").empty()) {
    WSFLOW_ASSIGN_OR_RETURN(
        m, ParseMappingSpec(flags.GetString("mapping"),
                            in.workflow.num_operations(),
                            in.network.num_servers()));
  } else {
    DeployContext ctx = MakeContext(in, 1);
    WSFLOW_ASSIGN_OR_RETURN(m,
                            RunAlgorithm(flags.GetString("algorithm"), ctx));
  }

  const bool trace_json = flags.GetBool("trace-json");
  SimOptions options;
  options.num_runs = static_cast<size_t>(flags.GetInt("runs"));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.record_trace = flags.GetBool("trace") || trace_json;
  options.server_contention = flags.GetBool("server-contention");
  options.bus_contention = flags.GetBool("bus-contention");

  CostModel model(in.workflow, in.network, in.profile_ptr());
  WSFLOW_ASSIGN_OR_RETURN(double analytic, model.ExecutionTime(m));

  const bool faulted = flags.GetInt("faults") > 0 ||
                       flags.GetInt("slowdowns") > 0 ||
                       !flags.GetString("faults-file").empty();
  if (!faulted) {
    WSFLOW_ASSIGN_OR_RETURN(
        SimResult result,
        SimulateWorkflow(in.workflow, in.network, m, options));
    if (trace_json) {
      out << result.trace.ToJson();
      return Status::OK();
    }
    out << "mean makespan over " << result.makespans.size()
        << " runs: " << FormatSeconds(result.mean_makespan) << "\n";
    out << "analytic expectation:      " << FormatSeconds(analytic) << "\n";
    for (const Server& s : in.network.servers()) {
      out << "mean busy " << s.name() << ": "
          << FormatSeconds(result.server_busy[s.id().value]) << "\n";
    }
    if (flags.GetBool("trace")) {
      out << "\ntrace of run 1:\n"
          << result.trace.ToString(in.workflow, in.network);
    }
    return Status::OK();
  }

  FaultSchedule schedule;
  if (!flags.GetString("faults-file").empty()) {
    const std::string path = flags.GetString("faults-file");
    std::ifstream file(path);
    if (!file) return Status::NotFound("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    WSFLOW_ASSIGN_OR_RETURN(
        schedule,
        FaultSchedule::Parse(in.network.num_servers(), buffer.str()));
  } else {
    FaultScheduleOptions schedule_options;
    schedule_options.seed = static_cast<uint64_t>(flags.GetInt("fault-seed"));
    double horizon = flags.GetDouble("fault-horizon");
    if (horizon <= 0) horizon = 2.0 * analytic;
    schedule_options.horizon_s = horizon;
    schedule_options.crashes = static_cast<size_t>(flags.GetInt("faults"));
    schedule_options.slowdowns =
        static_cast<size_t>(flags.GetInt("slowdowns"));
    schedule_options.min_downtime_s = 0.05 * horizon;
    schedule_options.max_downtime_s = 0.20 * horizon;
    WSFLOW_ASSIGN_OR_RETURN(
        schedule, FaultSchedule::Generate(in.network, schedule_options));
  }

  FaultSimOptions fault_options;
  fault_options.sim = options;
  WSFLOW_ASSIGN_OR_RETURN(fault_options.policy,
                          LossPolicyFromString(flags.GetString("policy")));
  fault_options.backoff.max_retries =
      static_cast<size_t>(flags.GetInt("retries"));
  fault_options.redispatch_timeout_s = flags.GetDouble("redispatch-timeout");
  fault_options.repair = flags.GetBool("repair");
  fault_options.profile = in.profile_ptr();

  WSFLOW_ASSIGN_OR_RETURN(
      FaultSimResult result,
      SimulateWithFaults(in.workflow, in.network, m, schedule,
                         fault_options));
  if (trace_json) {
    out << result.trace.ToJson();
    return Status::OK();
  }
  out << "fault schedule (" << schedule.events().size() << " events):\n"
      << schedule.ToString();
  out << "completion:   " << result.completed_runs << "/" << result.runs
      << " runs (" << FormatDouble(100.0 * result.completion_rate, 4)
      << "%)\n";
  out << "mean makespan of completed runs: "
      << FormatSeconds(result.mean_makespan) << "\n";
  out << "analytic expectation (no faults): " << FormatSeconds(analytic)
      << "\n";
  if (result.analytic_masked_makespan > 0) {
    out << "analytic masked (peak churn):     "
        << FormatSeconds(result.analytic_masked_makespan) << "\n";
  }
  if (flags.GetBool("stats")) {
    out << "tokens lost:     " << result.tokens_lost << "\n";
    out << "messages lost:   " << result.messages_lost << "\n";
    out << "retries:         " << result.retries << "\n";
    out << "redispatches:    " << result.redispatches << "\n";
    out << "gave up:         " << result.gave_up << "\n";
    out << "repairs:         " << result.repairs << "\n";
    for (const Server& s : in.network.servers()) {
      out << "mean busy " << s.name() << ": "
          << FormatSeconds(result.server_busy[s.id().value]) << "\n";
    }
  }
  if (flags.GetBool("trace")) {
    out << "\ntrace of run 1:\n"
        << result.trace.ToString(in.workflow, in.network);
  }
  return Status::OK();
}

Status CmdSample(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags;
  AddInputFlags(&flags);
  flags.AddInt("samples", 32000, "sample budget");
  flags.AddInt("seed", 1, "sampling seed");
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;
  WSFLOW_ASSIGN_OR_RETURN(Inputs in, LoadInputs(flags));
  CostModel model(in.workflow, in.network, in.profile_ptr());
  SamplingOptions options;
  options.samples = static_cast<size_t>(flags.GetInt("samples"));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  WSFLOW_ASSIGN_OR_RETURN(SampleBest best,
                          SampleSolutionSpace(model, options));
  out << (best.exhaustive ? "enumerated all " : "sampled ")
      << best.evaluated << " mappings\n";
  out << "best T_execute:   " << FormatSeconds(best.best_execution_time)
      << "  (worst " << FormatSeconds(best.worst_execution_time) << ")\n";
  out << "best TimePenalty: " << FormatSeconds(best.best_time_penalty)
      << "  (worst " << FormatSeconds(best.worst_time_penalty) << ")\n";
  out << "best combined:    " << FormatSeconds(best.best_combined) << "\n";
  out << "best-combined spec: "
      << FormatMappingSpec(best.best_combined_mapping) << "\n";
  return Status::OK();
}

Status CmdCompare(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags;
  AddInputFlags(&flags);
  flags.AddInt("seed", 1, "seed for randomized steps");
  flags.AddBool("extensions", false,
                "also run the non-paper extension algorithms");
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;
  WSFLOW_ASSIGN_OR_RETURN(Inputs in, LoadInputs(flags));
  CostModel model(in.workflow, in.network, in.profile_ptr());
  DeployContext ctx = MakeContext(in, static_cast<uint64_t>(
                                           flags.GetInt("seed")));
  std::vector<std::string> algorithms{"fair-load", "fltr", "fltr2",
                                      "fl-merge", "heavy-ops"};
  if (flags.GetBool("extensions")) {
    for (const char* extra : {"random", "round-robin", "critical-path",
                              "hill-climb", "annealing"}) {
      algorithms.push_back(extra);
    }
  }
  out << std::left << std::setw(16) << "algorithm" << std::right
      << std::setw(16) << "T_execute" << std::setw(16) << "TimePenalty"
      << std::setw(16) << "combined" << "\n";
  for (const std::string& name : algorithms) {
    Result<Mapping> m = RunAlgorithm(name, ctx);
    if (!m.ok()) {
      out << std::left << std::setw(16) << name
          << "  error: " << m.status().ToString() << "\n";
      continue;
    }
    Result<CostBreakdown> cost = model.Evaluate(*m);
    if (!cost.ok()) {
      out << std::left << std::setw(16) << name
          << "  error: " << cost.status().ToString() << "\n";
      continue;
    }
    out << std::left << std::setw(16) << name << std::right << std::setw(16)
        << FormatSeconds(cost->execution_time) << std::setw(16)
        << FormatSeconds(cost->time_penalty) << std::setw(16)
        << FormatSeconds(cost->combined) << "\n";
  }
  return Status::OK();
}

Status CmdExperiment(const std::vector<std::string>& args,
                     std::ostream& out) {
  FlagSet flags;
  flags.AddString("class", "c", "experiment class: a | b | c (paper §4.1)");
  flags.AddString("workload", "line", "line | bushy | lengthy | hybrid");
  flags.AddInt("trials", 50, "independently drawn instances");
  flags.AddInt("ops", 19, "operations per workflow");
  flags.AddInt("servers", 5, "servers in the farm (bus topology only)");
  flags.AddInt("seed", 42, "experiment seed");
  flags.AddDouble("bus", 0.0, "fixed bus speed bps (0 = draw from the "
                  "class distribution)");
  flags.AddString("topology", "bus", "network family: bus | fat-tree | "
                  "hier (WAN families ignore --servers)");
  flags.AddInt("spines", 2, "fat-tree: spine servers");
  flags.AddInt("racks", 2, "fat-tree: racks");
  flags.AddInt("rack-size", 4, "fat-tree: servers per rack");
  flags.AddInt("regions", 2, "hier: regions");
  flags.AddInt("clusters", 2, "hier: clusters per region");
  flags.AddInt("cluster-size", 3, "hier: servers per cluster");
  flags.AddDouble("wan-speed", 0.0,
                  "hier: inter-region WAN link speed bps (0 = default)");
  flags.AddString("algorithms", "",
                  "comma-separated registry names (default: the paper's "
                  "five bus algorithms)");
  flags.AddString("csv", "", "also write per-trial scatter CSV here");
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;

  WSFLOW_ASSIGN_OR_RETURN(WorkloadKind workload,
                          ParseWorkload(flags.GetString("workload")));
  WSFLOW_ASSIGN_OR_RETURN(
      ExperimentConfig cfg,
      MakeClassConfig(flags.GetString("class"), workload));
  cfg.trials = static_cast<size_t>(flags.GetInt("trials"));
  cfg.num_operations = static_cast<size_t>(flags.GetInt("ops"));
  cfg.num_servers = static_cast<size_t>(flags.GetInt("servers"));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  if (flags.GetDouble("bus") > 0) {
    cfg.fixed_bus_speed_bps = flags.GetDouble("bus");
  }
  WSFLOW_ASSIGN_OR_RETURN(
      cfg.topology, ExperimentTopologyFromString(flags.GetString("topology")));
  cfg.fat_tree.spines = static_cast<size_t>(flags.GetInt("spines"));
  cfg.fat_tree.racks = static_cast<size_t>(flags.GetInt("racks"));
  cfg.fat_tree.rack_size = static_cast<size_t>(flags.GetInt("rack-size"));
  cfg.hierarchical.regions = static_cast<size_t>(flags.GetInt("regions"));
  cfg.hierarchical.clusters_per_region =
      static_cast<size_t>(flags.GetInt("clusters"));
  cfg.hierarchical.cluster_size =
      static_cast<size_t>(flags.GetInt("cluster-size"));
  if (flags.GetDouble("wan-speed") > 0) {
    cfg.hierarchical.wan_speed_bps = flags.GetDouble("wan-speed");
  }

  std::vector<std::string> algorithms = PaperBusAlgorithms();
  if (!flags.GetString("algorithms").empty()) {
    algorithms.clear();
    for (const std::string& name :
         Split(flags.GetString("algorithms"), ',')) {
      algorithms.emplace_back(Trim(name));
    }
  }

  WSFLOW_ASSIGN_OR_RETURN(ExperimentResult result,
                          RunExperiment(cfg, algorithms));
  size_t n_servers = cfg.num_servers;
  if (cfg.topology == ExperimentTopology::kFatTree) {
    n_servers = cfg.fat_tree.spines + cfg.fat_tree.racks *
                cfg.fat_tree.rack_size;
  } else if (cfg.topology == ExperimentTopology::kHierarchical) {
    n_servers = cfg.hierarchical.regions *
                cfg.hierarchical.clusters_per_region *
                cfg.hierarchical.cluster_size;
  }
  out << "experiment " << cfg.name << ": " << cfg.trials << " trials, M="
      << cfg.num_operations << ", N=" << n_servers << " ("
      << ExperimentTopologyToString(cfg.topology) << ")\n";
  out << SummaryTable(result).ToString();
  if (!flags.GetString("csv").empty()) {
    WSFLOW_RETURN_IF_ERROR(WriteCsv(
        flags.GetString("csv"),
        {"algorithm", "trial", "execution_time_s", "time_penalty_s"},
        ScatterRows(result)));
    out << "(scatter data -> " << flags.GetString("csv") << ")\n";
  }
  return Status::OK();
}

Status CmdResponseTimes(const std::vector<std::string>& args,
                        std::ostream& out) {
  FlagSet flags;
  AddInputFlags(&flags);
  flags.AddString("algorithm", "heavy-ops", "deployment algorithm");
  flags.AddString("mapping", "", "explicit mapping spec (overrides "
                  "--algorithm)");
  flags.AddInt("seed", 1, "seed for randomized steps");
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;
  WSFLOW_ASSIGN_OR_RETURN(Inputs in, LoadInputs(flags));
  Mapping m;
  if (!flags.GetString("mapping").empty()) {
    WSFLOW_ASSIGN_OR_RETURN(
        m, ParseMappingSpec(flags.GetString("mapping"),
                            in.workflow.num_operations(),
                            in.network.num_servers()));
  } else {
    DeployContext ctx = MakeContext(in, static_cast<uint64_t>(
                                            flags.GetInt("seed")));
    WSFLOW_ASSIGN_OR_RETURN(m,
                            RunAlgorithm(flags.GetString("algorithm"), ctx));
  }
  CostModel model(in.workflow, in.network, in.profile_ptr());
  WSFLOW_ASSIGN_OR_RETURN(ResponseTimes times,
                          ComputeResponseTimes(model, m));
  for (const Operation& op : in.workflow.operations()) {
    out << std::left << std::setw(24) << op.name() << " completes at "
        << FormatSeconds(times[op.id().value]) << " on "
        << in.network.server(m.ServerOf(op.id())).name() << "\n";
  }
  return Status::OK();
}

Status CmdStats(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags;
  flags.AddString("workflow", "", "path to the workflow XML (required)");
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;
  if (flags.GetString("workflow").empty()) {
    return Status::InvalidArgument("--workflow is required");
  }
  WSFLOW_ASSIGN_OR_RETURN(Workflow w,
                          LoadAnyWorkflow(flags.GetString("workflow")));
  WSFLOW_ASSIGN_OR_RETURN(WorkflowMetrics metrics,
                          ComputeWorkflowMetrics(w));
  out << "workflow '" << w.name() << "'\n";
  out << "  operations:       " << metrics.num_operations << " ("
      << metrics.num_decision_nodes << " decision, "
      << FormatDouble(metrics.decision_fraction * 100, 4) << "%)\n";
  out << "  messages:         " << metrics.num_transitions << "\n";
  out << "  depth:            " << metrics.depth << "\n";
  out << "  max fan-out:      " << metrics.max_fan_out << "\n";
  out << "  max nesting:      " << metrics.max_nesting << "\n";
  out << "  E[ops per run]:   "
      << FormatDouble(metrics.expected_executed_operations, 6) << "\n";
  out << "  total cycles:     " << FormatDouble(metrics.total_cycles, 6)
      << " (E[per run] " << FormatDouble(metrics.expected_cycles, 6)
      << ")\n";
  out << "  total msg bits:   "
      << FormatBits(metrics.total_message_bits) << " (E[per run] "
      << FormatBits(metrics.expected_message_bits) << ")\n";
  return Status::OK();
}

Status CmdFailover(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags;
  AddInputFlags(&flags);
  flags.AddString("algorithm", "heavy-ops", "deployment algorithm");
  flags.AddString("mapping", "", "explicit mapping spec (overrides "
                  "--algorithm)");
  flags.AddString("strategy", "worst-fit",
                  "orphan redistribution: worst-fit | co-locate");
  flags.AddInt("seed", 1, "seed for randomized steps");
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;
  WSFLOW_ASSIGN_OR_RETURN(Inputs in, LoadInputs(flags));
  FailoverStrategy strategy;
  if (flags.GetString("strategy") == "worst-fit") {
    strategy = FailoverStrategy::kWorstFit;
  } else if (flags.GetString("strategy") == "co-locate") {
    strategy = FailoverStrategy::kCoLocate;
  } else {
    return Status::InvalidArgument("unknown --strategy '" +
                                   flags.GetString("strategy") + "'");
  }
  Mapping m;
  if (!flags.GetString("mapping").empty()) {
    WSFLOW_ASSIGN_OR_RETURN(
        m, ParseMappingSpec(flags.GetString("mapping"),
                            in.workflow.num_operations(),
                            in.network.num_servers()));
  } else {
    DeployContext ctx = MakeContext(in, static_cast<uint64_t>(
                                            flags.GetInt("seed")));
    WSFLOW_ASSIGN_OR_RETURN(m,
                            RunAlgorithm(flags.GetString("algorithm"), ctx));
  }
  CostModel model(in.workflow, in.network, in.profile_ptr());
  WSFLOW_ASSIGN_OR_RETURN(std::vector<FailoverReport> reports,
                          AnalyzeAllFailovers(model, m, strategy));
  out << std::left << std::setw(10) << "failed" << std::right
      << std::setw(10) << "orphans" << std::setw(16) << "exec before"
      << std::setw(16) << "exec after" << std::setw(16) << "penalty after"
      << std::setw(12) << "scale-up" << "\n";
  for (const FailoverReport& r : reports) {
    out << std::left << std::setw(10)
        << in.network.server(r.failed_server).name() << std::right
        << std::setw(10) << r.orphaned_operations << std::setw(16)
        << FormatSeconds(r.execution_time_before) << std::setw(16)
        << FormatSeconds(r.execution_time_after) << std::setw(16)
        << FormatSeconds(r.time_penalty_after) << std::setw(12)
        << FormatDouble(r.worst_load_scale_up, 4) << "\n";
  }
  return Status::OK();
}

Status CmdDot(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags;
  flags.AddString("workflow", "", "workflow XML to render");
  flags.AddString("network", "", "network XML to render (or to color a "
                  "deployment)");
  flags.AddString("algorithm", "", "when set with both inputs, color the "
                  "deployment this algorithm produces");
  flags.AddInt("seed", 1, "seed for randomized steps");
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;
  bool have_workflow = !flags.GetString("workflow").empty();
  bool have_network = !flags.GetString("network").empty();
  if (!have_workflow && !have_network) {
    return Status::InvalidArgument("need --workflow and/or --network");
  }
  if (have_workflow && have_network && !flags.GetString("algorithm").empty()) {
    WSFLOW_ASSIGN_OR_RETURN(Inputs in, LoadInputs(flags));
    DeployContext ctx = MakeContext(in, static_cast<uint64_t>(
                                            flags.GetInt("seed")));
    WSFLOW_ASSIGN_OR_RETURN(Mapping m,
                            RunAlgorithm(flags.GetString("algorithm"), ctx));
    out << DeploymentToDot(in.workflow, in.network, m);
    return Status::OK();
  }
  if (have_workflow) {
    WSFLOW_ASSIGN_OR_RETURN(Workflow w,
                            LoadWorkflow(flags.GetString("workflow")));
    out << WorkflowToDot(w);
  }
  if (have_network) {
    WSFLOW_ASSIGN_OR_RETURN(Network n,
                            LoadNetwork(flags.GetString("network")));
    out << NetworkToDot(n);
  }
  return Status::OK();
}

Status CmdListAlgorithms(const std::vector<std::string>& args,
                         std::ostream& out) {
  (void)args;
  RegisterBuiltinAlgorithms();
  for (const std::string& name : AlgorithmRegistry::Global().Names()) {
    out << name << "\n";
  }
  return Status::OK();
}

Status CmdServeBench(const std::vector<std::string>& args,
                     std::ostream& out) {
  FlagSet flags;
  flags.AddString("workload", "line", "line | bushy | lengthy | hybrid");
  flags.AddString("class", "c", "experiment class: a | b | c (paper §4.1)");
  flags.AddInt("ops", 19, "operations per workflow");
  flags.AddInt("servers", 5, "servers in the farm");
  flags.AddInt("unique", 8, "distinct (workflow, network) instances");
  flags.AddInt("requests", 200, "total requests in the stream");
  flags.AddString("algorithm", "portfolio", "deployment algorithm to serve");
  flags.AddInt("queue-capacity", 256, "bounded request queue capacity");
  flags.AddInt("cache-capacity", 1024, "result cache entries");
  flags.AddInt("seed", 42, "instance and stream seed");
  flags.AddDouble("deadline-ms", 0,
                  "per-request deadline in milliseconds (0 = none)");
  flags.AddDouble("exec-weight", 0.5, "objective weight of T_execute");
  flags.AddDouble("fair-weight", 0.5, "objective weight of TimePenalty");
  AddThreadsFlag(&flags);
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;

  const size_t unique = static_cast<size_t>(flags.GetInt("unique"));
  const size_t requests = static_cast<size_t>(flags.GetInt("requests"));
  if (unique == 0 || requests == 0) {
    return Status::InvalidArgument("--unique and --requests must be > 0");
  }

  WSFLOW_ASSIGN_OR_RETURN(WorkloadKind workload,
                          ParseWorkload(flags.GetString("workload")));
  WSFLOW_ASSIGN_OR_RETURN(
      ExperimentConfig cfg,
      MakeClassConfig(flags.GetString("class"), workload));
  cfg.num_operations = static_cast<size_t>(flags.GetInt("ops"));
  cfg.num_servers = static_cast<size_t>(flags.GetInt("servers"));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  // Draw the instance pool once; a real deployment front-end would likewise
  // digest each uploaded artifact once and reuse the digest per query.
  struct Instance {
    std::shared_ptr<const Workflow> workflow;
    std::shared_ptr<const Network> network;
    std::shared_ptr<const ExecutionProfile> profile;
    uint64_t workflow_digest = 0;
    uint64_t network_digest = 0;
  };
  std::vector<Instance> instances;
  instances.reserve(unique);
  for (size_t i = 0; i < unique; ++i) {
    WSFLOW_ASSIGN_OR_RETURN(TrialInstance t, DrawTrial(cfg, i));
    Instance inst;
    inst.workflow = std::make_shared<Workflow>(std::move(t.workflow));
    inst.network = std::make_shared<Network>(std::move(t.network));
    if (t.profile) {
      inst.profile =
          std::make_shared<ExecutionProfile>(std::move(*t.profile));
    }
    inst.workflow_digest = serve::WorkflowDigest(*inst.workflow);
    inst.network_digest = serve::NetworkDigest(*inst.network);
    instances.push_back(std::move(inst));
  }

  serve::ServiceOptions options;
  options.num_threads = static_cast<size_t>(flags.GetInt("threads"));
  options.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue-capacity"));
  options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache-capacity"));
  serve::DeploymentService service(options);
  WSFLOW_RETURN_IF_ERROR(service.Start());

  CostOptions cost_options;
  cost_options.execution_weight = flags.GetDouble("exec-weight");
  cost_options.fairness_weight = flags.GetDouble("fair-weight");
  const double deadline_ms = flags.GetDouble("deadline-ms");

  auto make_request = [&](const Instance& inst) {
    serve::DeployRequest req;
    req.workflow = inst.workflow;
    req.network = inst.network;
    req.profile = inst.profile;
    req.workflow_digest = inst.workflow_digest;
    req.network_digest = inst.network_digest;
    req.algorithm = flags.GetString("algorithm");
    req.cost_options = cost_options;
    req.seed = cfg.seed;
    if (deadline_ms > 0) {
      req.deadline =
          serve::ServiceClock::now() +
          std::chrono::duration_cast<serve::ServiceClock::duration>(
              std::chrono::duration<double, std::milli>(deadline_ms));
    }
    return req;
  };

  // Stream: each instance once cold, then uniform repeats (cache hits).
  Rng stream_rng(cfg.seed ^ 0x5e5e5e5eull);
  std::vector<std::future<serve::DeployResponse>> futures;
  futures.reserve(requests);
  auto bench_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests; ++i) {
    const Instance& inst =
        instances[i < unique ? i
                             : static_cast<size_t>(
                                   stream_rng.NextBounded(unique))];
    // Backpressure loop: yield and retry while the queue is full.
    for (;;) {
      Result<std::future<serve::DeployResponse>> f =
          service.Submit(make_request(inst));
      if (f.ok()) {
        futures.push_back(std::move(*f));
        break;
      }
      if (!f.status().IsResourceExhausted()) return f.status();
      std::this_thread::yield();
    }
  }

  size_t ok = 0, expired = 0, failed = 0;
  for (std::future<serve::DeployResponse>& f : futures) {
    serve::DeployResponse resp = f.get();
    if (resp.status.ok()) {
      ++ok;
    } else if (resp.status.IsDeadlineExceeded()) {
      ++expired;
    } else {
      ++failed;
    }
  }
  double elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - bench_start)
                         .count();
  service.Stop();

  serve::MetricsSnapshot snap = service.metrics().Snapshot();
  out << "serve-bench: " << requests << " requests over " << unique
      << " instances, " << service.num_threads() << " worker threads, "
      << "algorithm=" << flags.GetString("algorithm") << "\n";
  out << "  wall time " << FormatSeconds(elapsed_s) << ", throughput "
      << FormatDouble(static_cast<double>(requests) / elapsed_s, 6)
      << " req/s\n";
  out << "  responses: ok=" << ok << " deadline-exceeded=" << expired
      << " failed=" << failed << "\n";
  out << snap.ToString();
  return Status::OK();
}

Status CmdChaos(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags;
  flags.AddString("workload", "line", "line | bushy | lengthy | hybrid");
  flags.AddString("class", "c", "experiment class: a | b | c (paper §4.1)");
  flags.AddInt("ops", 19, "operations per workflow");
  flags.AddInt("servers", 8, "servers in the farm");
  flags.AddInt("requests", 100, "requests spread over the horizon");
  flags.AddInt("kill", 0,
               "crash/recover pairs to inject (0 = ceil(servers/4))");
  flags.AddInt("slowdowns", 0, "soft slowdown events to inject");
  flags.AddDouble("horizon", 100.0, "virtual-time length of the run (s)");
  flags.AddString("algorithm", "portfolio", "deployment algorithm to serve");
  flags.AddInt("repair-budget", 2048,
               "delta-evaluation budget of each repair (0 = unlimited)");
  flags.AddInt("seed", 42, "instance, schedule and stream seed");
  flags.AddDouble("exec-weight", 0.5, "objective weight of T_execute");
  flags.AddDouble("fair-weight", 0.5, "objective weight of TimePenalty");
  AddThreadsFlag(&flags);
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;

  const size_t requests = static_cast<size_t>(flags.GetInt("requests"));
  if (requests == 0) return Status::InvalidArgument("--requests must be > 0");
  const double horizon_s = flags.GetDouble("horizon");

  WSFLOW_ASSIGN_OR_RETURN(WorkloadKind workload,
                          ParseWorkload(flags.GetString("workload")));
  WSFLOW_ASSIGN_OR_RETURN(
      ExperimentConfig cfg,
      MakeClassConfig(flags.GetString("class"), workload));
  cfg.num_operations = static_cast<size_t>(flags.GetInt("ops"));
  cfg.num_servers = static_cast<size_t>(flags.GetInt("servers"));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  WSFLOW_ASSIGN_OR_RETURN(TrialInstance trial, DrawTrial(cfg, 0));
  auto workflow = std::make_shared<Workflow>(std::move(trial.workflow));
  auto network = std::make_shared<Network>(std::move(trial.network));
  std::shared_ptr<const ExecutionProfile> profile;
  if (trial.profile) {
    profile = std::make_shared<ExecutionProfile>(std::move(*trial.profile));
  }
  const size_t N = network->num_servers();

  // The fault schedule: deterministic from the seed, replayable verbatim.
  FaultScheduleOptions fault_options;
  fault_options.seed = cfg.seed ^ 0xC4A05ull;
  fault_options.horizon_s = horizon_s;
  size_t kill = static_cast<size_t>(flags.GetInt("kill"));
  fault_options.crashes = kill == 0 ? (N + 3) / 4 : kill;
  fault_options.slowdowns = static_cast<size_t>(flags.GetInt("slowdowns"));
  fault_options.min_downtime_s = 0.1 * horizon_s;
  fault_options.max_downtime_s = 0.25 * horizon_s;
  WSFLOW_ASSIGN_OR_RETURN(FaultSchedule schedule,
                          FaultSchedule::Generate(*network, fault_options));

  auto health = std::make_shared<serve::HealthTracker>(N);
  serve::ServiceOptions options;
  options.num_threads = static_cast<size_t>(flags.GetInt("threads"));
  options.health = health;
  options.repair_eval_budget =
      static_cast<size_t>(flags.GetInt("repair-budget"));
  serve::DeploymentService service(options);
  WSFLOW_RETURN_IF_ERROR(service.Start());

  CostOptions cost_options;
  cost_options.execution_weight = flags.GetDouble("exec-weight");
  cost_options.fairness_weight = flags.GetDouble("fair-weight");

  serve::DeployRequest base;
  base.workflow = workflow;
  base.network = network;
  base.profile = profile;
  base.workflow_digest = serve::WorkflowDigest(*workflow);
  base.network_digest = serve::NetworkDigest(*network);
  base.algorithm = flags.GetString("algorithm");
  base.cost_options = cost_options;
  base.seed = cfg.seed;

  // Drive the run in virtual time: advance the fault timeline, feed the
  // health tracker, then submit-and-wait one request. The serialized
  // submit→wait makes the whole transcript independent of --threads.
  FaultTimeline timeline(schedule);
  size_t ok = 0, degraded = 0, repaired = 0, failed = 0;
  std::optional<Mapping> served;
  for (size_t i = 0; i < requests; ++i) {
    double t = horizon_s * static_cast<double>(i + 1) /
               static_cast<double>(requests);
    for (const FaultEvent& e : timeline.AdvanceTo(t)) {
      health->Observe(e);
    }

    ExponentialBackoff backoff(BackoffOptions{}, cfg.seed ^ i);
    Result<std::future<serve::DeployResponse>> f = service.Submit(base);
    while (!f.ok() && f.status().IsResourceExhausted() &&
           backoff.ShouldRetry()) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(backoff.NextDelay()));
      f = service.Submit(base);
    }
    if (!f.ok()) {
      ++failed;
      continue;
    }
    serve::DeployResponse resp = f->get();
    if (!resp.status.ok()) {
      ++failed;
      continue;
    }
    ++ok;
    if (!served) served = resp.mapping;
    if (resp.degraded) ++degraded;
    if (resp.repaired) ++repaired;
    if (!resp.degraded) {
      // A clean response exercised exactly its mapping's servers; the
      // successes walk recovering servers back to healthy.
      std::vector<bool> used(N, false);
      for (size_t op = 0; op < resp.mapping.num_operations(); ++op) {
        ServerId s = resp.mapping.ServerOf(OperationId(
            static_cast<uint32_t>(op)));
        if (s.valid() && !used[s.value]) {
          used[s.value] = true;
          health->ReportSuccess(s);
        }
      }
    }
  }
  service.Stop();

  serve::MetricsSnapshot snap = service.metrics().Snapshot();
  out << "chaos: " << N << " servers, " << requests << " requests over "
      << FormatSeconds(horizon_s) << " virtual, algorithm="
      << base.algorithm << "\n";
  out << "fault schedule (seed " << fault_options.seed << "): "
      << schedule.num_crashes() << " crash/recover pairs, "
      << fault_options.slowdowns << " slowdowns\n";
  for (const std::string& line : Split(schedule.ToString(), '\n')) {
    if (!line.empty()) out << "  " << line << "\n";
  }
  out << "responses: ok=" << ok << " degraded=" << degraded
      << " repaired=" << repaired << " failed=" << failed << "\n";
  out << "service: hits=" << snap.cache_hits << " misses="
      << snap.cache_misses << " repairs=" << snap.repairs
      << " repair-failures=" << snap.repair_failures << "\n";
  out << "health: " << health->ToString() << "\n";

  // Token-level loss accounting: replay the same fault schedule through the
  // fault-aware discrete-event simulator against the served deployment,
  // under the default retry+re-dispatch recovery policy.
  if (served) {
    FaultSimOptions sim_options;
    sim_options.sim.num_runs = 32;
    sim_options.sim.seed = cfg.seed;
    sim_options.profile = profile.get();
    WSFLOW_ASSIGN_OR_RETURN(
        FaultSimResult sim,
        SimulateWithFaults(*workflow, *network, *served, schedule,
                           sim_options));
    out << "sim (retry+redispatch, " << sim.runs
        << " runs): completion-rate="
        << FormatDouble(100.0 * sim.completion_rate, 4)
        << "% tokens-lost=" << sim.tokens_lost << " retries=" << sim.retries
        << " redispatches=" << sim.redispatches << "\n";
  }

  // Repair quality at peak churn: heal the full-health deployment against
  // the worst mask of the schedule, with the budgeted repair search vs. a
  // from-scratch re-optimization (quality and evaluation-cost yardstick).
  ServerMask peak = ServerMask::AllAlive(N);
  {
    ServerMask current = ServerMask::AllAlive(N);
    for (const FaultEvent& e : schedule.events()) {
      if (e.kind == FaultKind::kCrash) {
        current.SetAlive(e.server, false);
      } else if (e.kind == FaultKind::kRecover) {
        current.SetAlive(e.server, true);
      }
      if (current.num_down() > peak.num_down()) peak = current;
    }
  }
  if (peak.num_down() == 0) {
    out << "repair quality: no churn injected\n";
    return Status::OK();
  }

  RegisterBuiltinAlgorithms();
  DeployContext ctx;
  ctx.workflow = workflow.get();
  ctx.network = network.get();
  ctx.profile = profile.get();
  ctx.seed = cfg.seed;
  ctx.cost_options = cost_options;
  WSFLOW_ASSIGN_OR_RETURN(Mapping baseline,
                          RunAlgorithm(base.algorithm, ctx));

  RepairOptions repair_options;
  repair_options.eval_budget = options.repair_eval_budget;
  repair_options.cost_options = cost_options;
  WSFLOW_ASSIGN_OR_RETURN(RepairResult healed,
                          RepairMapping(CostModel(*workflow, *network,
                                                  profile.get()),
                                        baseline, peak, repair_options));
  RepairOptions scratch_options = repair_options;
  scratch_options.eval_budget = 0;  // the yardstick runs unbudgeted
  WSFLOW_ASSIGN_OR_RETURN(RepairResult scratch,
                          ReoptimizeFromScratch(CostModel(*workflow, *network,
                                                          profile.get()),
                                                peak, scratch_options));
  out << "repair quality at peak churn (" << peak.ToString() << "):\n"
      << "  repaired:     combined=" << FormatSeconds(healed.cost.combined)
      << " evals=" << healed.polish_evaluations << "\n"
      << "  from-scratch: combined=" << FormatSeconds(scratch.cost.combined)
      << " evals=" << scratch.polish_evaluations << "\n";
  if (scratch.cost.combined > 0 && scratch.polish_evaluations > 0) {
    out << "  ratios: cost x"
        << FormatDouble(healed.cost.combined / scratch.cost.combined, 4)
        << ", evals x"
        << FormatDouble(static_cast<double>(healed.polish_evaluations) /
                            static_cast<double>(scratch.polish_evaluations),
                        4)
        << "\n";
  }
  return Status::OK();
}

Status CmdFleet(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags;
  flags.AddString("workload", "line", "line | bushy | lengthy | hybrid");
  flags.AddString("class", "c", "experiment class: a | b | c (paper §4.1)");
  flags.AddInt("ops", 12, "operations per archetype workflow");
  flags.AddInt("servers", 8, "servers in the shared farm");
  flags.AddInt("archetypes", 4, "workflow templates tenants instantiate");
  flags.AddInt("tenants", 200, "tenants submitted before the first epoch");
  flags.AddInt("epochs", 50, "drift epochs to run");
  flags.AddInt("seed", 42, "instance, weight and drift-stream seed");
  flags.AddDouble("drift", 0.2, "sigma of the per-epoch traffic drift walk");
  flags.AddDouble("drift-threshold", 0.1,
                  "relative cost regression that triggers migration");
  flags.AddInt("max-migrations", 8,
               "migration churn bound per epoch (0 = unlimited)");
  flags.AddInt("migration-budget", 256,
               "delta-evaluation budget per warm migration (0 = unlimited)");
  flags.AddInt("deploy-budget", 1024,
               "delta-evaluation budget per initial deployment");
  flags.AddDouble("max-share", 0.25,
                  "per-tenant quota as a fraction of farm capacity");
  flags.AddDouble("max-util", 0.9,
                  "farm capacity budget as a fraction of total power");
  flags.AddDouble("exec-weight", 0.5, "objective weight of T_execute");
  flags.AddDouble("fair-weight", 0.5, "objective weight of FarmPenalty");
  flags.AddInt("report-every", 10, "print every k-th epoch (and the last)");
  AddThreadsFlag(&flags);
  WSFLOW_ASSIGN_OR_RETURN(std::vector<std::string> positional,
                          flags.Parse(args));
  (void)positional;

  const size_t tenants = static_cast<size_t>(flags.GetInt("tenants"));
  const size_t epochs = static_cast<size_t>(flags.GetInt("epochs"));
  const size_t archetypes = static_cast<size_t>(flags.GetInt("archetypes"));
  if (tenants == 0) return Status::InvalidArgument("--tenants must be > 0");
  if (archetypes == 0) {
    return Status::InvalidArgument("--archetypes must be > 0");
  }
  if (epochs == 0) return Status::InvalidArgument("--epochs must be > 0");
  if (flags.GetInt("ops") <= 0) {
    return Status::InvalidArgument("--ops must be > 0");
  }
  if (flags.GetInt("servers") <= 0) {
    return Status::InvalidArgument("--servers must be > 0");
  }
  if (flags.GetDouble("max-share") <= 0) {
    return Status::InvalidArgument("--max-share must be > 0");
  }
  if (flags.GetDouble("max-util") <= 0) {
    return Status::InvalidArgument("--max-util must be > 0");
  }
  if (flags.GetDouble("drift") < 0) {
    return Status::InvalidArgument("--drift must be >= 0");
  }

  WSFLOW_ASSIGN_OR_RETURN(WorkloadKind workload,
                          ParseWorkload(flags.GetString("workload")));
  WSFLOW_ASSIGN_OR_RETURN(
      ExperimentConfig cfg,
      MakeClassConfig(flags.GetString("class"), workload));
  cfg.num_operations = static_cast<size_t>(flags.GetInt("ops"));
  cfg.num_servers = static_cast<size_t>(flags.GetInt("servers"));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  // Archetype trials share the farm of trial 0; their workflows (and
  // profiles) vary per trial index. Storage is filled completely before
  // any CostModel takes a reference.
  Network network;
  std::vector<Workflow> workflows;
  std::vector<std::optional<ExecutionProfile>> profiles;
  workflows.reserve(archetypes);
  profiles.reserve(archetypes);
  for (size_t k = 0; k < archetypes; ++k) {
    WSFLOW_ASSIGN_OR_RETURN(TrialInstance trial, DrawTrial(cfg, k));
    if (k == 0) network = std::move(trial.network);
    workflows.push_back(std::move(trial.workflow));
    profiles.push_back(std::move(trial.profile));
  }
  std::deque<CostModel> models;
  std::vector<const CostModel*> model_ptrs;
  for (size_t k = 0; k < archetypes; ++k) {
    models.emplace_back(workflows[k], network,
                        profiles[k] ? &*profiles[k] : nullptr);
    WSFLOW_RETURN_IF_ERROR(models.back().Warm());
    model_ptrs.push_back(&models.back());
  }

  fleet::FleetOptions options;
  options.budget.max_utilization = flags.GetDouble("max-util");
  options.budget.max_tenant_share = flags.GetDouble("max-share");
  options.drift.sigma = flags.GetDouble("drift");
  options.cost_options.execution_weight = flags.GetDouble("exec-weight");
  options.cost_options.fairness_weight = flags.GetDouble("fair-weight");
  options.drift_threshold = flags.GetDouble("drift-threshold");
  options.max_migrations_per_epoch =
      static_cast<size_t>(flags.GetInt("max-migrations"));
  options.migration_eval_budget =
      static_cast<size_t>(flags.GetInt("migration-budget"));
  options.deploy_eval_budget =
      static_cast<size_t>(flags.GetInt("deploy-budget"));
  options.threads = static_cast<size_t>(flags.GetInt("threads"));

  serve::ServeMetrics metrics;
  fleet::FleetController controller(model_ptrs, options, &metrics);

  // Tenant roster: archetypes round-robin, initial weights and drift seeds
  // from one parent stream — a pure function of --seed.
  Rng parent(cfg.seed ^ 0xF1EE7ull);
  for (size_t i = 0; i < tenants; ++i) {
    fleet::TenantSpec spec;
    spec.archetype = i % archetypes;
    spec.weight = parent.NextDouble(0.5, 2.0);
    spec.drift_seed = parent.NextUint64();
    WSFLOW_RETURN_IF_ERROR(controller.Submit(spec).status());
  }

  out << "fleet: " << tenants << " tenants over " << archetypes
      << " archetypes, " << network.num_servers() << " servers, " << epochs
      << " epochs, seed " << cfg.seed << "\n";
  {
    size_t deployed = 0, queued = 0, rejected = 0;
    for (size_t id = 0; id < controller.num_tenants(); ++id) {
      switch (controller.tenant(id).status) {
        case fleet::TenantStatus::kDeployed: ++deployed; break;
        case fleet::TenantStatus::kQueued: ++queued; break;
        case fleet::TenantStatus::kRejected: ++rejected; break;
      }
    }
    out << "admission: deployed=" << deployed << " queued=" << queued
        << " rejected=" << rejected << " utilization="
        << FormatDouble(controller.admission().utilization() * 100, 4)
        << "%\n";
  }

  const size_t report_every =
      std::max<size_t>(1, static_cast<size_t>(flags.GetInt("report-every")));
  for (size_t e = 0; e < epochs; ++e) {
    WSFLOW_ASSIGN_OR_RETURN(fleet::EpochReport report, controller.RunEpoch());
    if (report.epoch % report_every == 0 || e + 1 == epochs) {
      out << "epoch " << report.epoch << ": deployed=" << report.deployed
          << " queued=" << report.queued
          << " migrations=" << report.migrations << "/"
          << report.migration_attempts << " clamps=" << report.weight_clamps
          << " evals=" << report.polish_evaluations
          << " p50=" << FormatSeconds(report.p50)
          << " p95=" << FormatSeconds(report.p95)
          << " p99=" << FormatSeconds(report.p99) << " util="
          << FormatDouble(report.utilization * 100, 4) << "%\n";
    }
  }

  // Independent quota audit: recompute every deployed tenant's demand from
  // its archetype and current weight, against the budget the controller
  // was configured with. The controller enforces these by construction;
  // this recount would expose any bookkeeping drift.
  std::vector<double> unit_demand;
  unit_demand.reserve(archetypes);
  for (size_t k = 0; k < archetypes; ++k) {
    ExecutionProfile profile = models[k].ProfileSnapshot();
    WorkflowView view(workflows[k], &profile);
    unit_demand.push_back(fleet::TenantDemandHz(view, 1.0));
  }
  const double capacity = controller.admission().capacity_hz();
  size_t violations = 0;
  double committed = 0;
  for (size_t id = 0; id < controller.num_tenants(); ++id) {
    const fleet::TenantState& t = controller.tenant(id);
    if (t.status != fleet::TenantStatus::kDeployed) continue;
    const double demand = t.weight * unit_demand[t.spec.archetype];
    committed += demand;
    if (demand > options.budget.max_tenant_share * capacity * (1 + 1e-9)) {
      ++violations;
    }
  }
  if (committed > options.budget.max_utilization * capacity * (1 + 1e-9)) {
    ++violations;
  }

  serve::MetricsSnapshot snap = metrics.Snapshot();
  out << "totals: migrations=" << controller.total_migrations()
      << " rejections=" << controller.total_rejections()
      << " clamps=" << controller.total_clamps()
      << " evals=" << controller.total_evaluations() << "\n";
  out << "metrics: admitted=" << snap.tenants_admitted
      << " queued=" << snap.tenants_queued
      << " rejected=" << snap.tenants_rejected
      << " migrations=" << snap.migrations
      << " stalls=" << snap.migration_stalls
      << " degraded=" << snap.degraded << "\n";
  out << "quota violations: " << violations << "\n";
  return Status::OK();
}

int RunCli(int argc, const char* const* argv, std::ostream& out,
           std::ostream& err) {
  static constexpr const char* kUsage =
      "usage: wsflow <command> [flags]\n"
      "commands:\n"
      "  generate         synthesize a workflow XML\n"
      "  make-network     synthesize a network XML\n"
      "  deploy           run one deployment algorithm\n"
      "  evaluate         cost an explicit mapping\n"
      "  simulate (sim)   event-simulate a deployment, optionally with "
      "fault injection\n"
      "  sample           bound the solution space by sampling\n"
      "  compare          compare algorithms on one instance\n"
      "  experiment       run a paper-style multi-trial experiment\n"
      "  response-times   per-operation completion times\n"
      "  stats            structural workflow metrics\n"
      "  failover         per-server failure impact of a deployment\n"
      "  dot              GraphViz export (workflow/network/deployment)\n"
      "  list-algorithms  show the algorithm registry\n"
      "  serve-bench      drive the concurrent deployment service\n"
      "  chaos            serve under seeded fault injection\n"
      "  fleet            multi-tenant shared-farm serving under drift\n";
  if (argc < 2) {
    err << kUsage;
    return 2;
  }
  std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  Status st;
  if (command == "generate") {
    st = CmdGenerate(args, out);
  } else if (command == "make-network") {
    st = CmdMakeNetwork(args, out);
  } else if (command == "deploy") {
    st = CmdDeploy(args, out);
  } else if (command == "evaluate") {
    st = CmdEvaluate(args, out);
  } else if (command == "simulate" || command == "sim") {
    st = CmdSimulate(args, out);
  } else if (command == "sample") {
    st = CmdSample(args, out);
  } else if (command == "compare") {
    st = CmdCompare(args, out);
  } else if (command == "experiment") {
    st = CmdExperiment(args, out);
  } else if (command == "response-times") {
    st = CmdResponseTimes(args, out);
  } else if (command == "stats") {
    st = CmdStats(args, out);
  } else if (command == "failover") {
    st = CmdFailover(args, out);
  } else if (command == "dot") {
    st = CmdDot(args, out);
  } else if (command == "list-algorithms") {
    st = CmdListAlgorithms(args, out);
  } else if (command == "serve-bench") {
    st = CmdServeBench(args, out);
  } else if (command == "chaos") {
    st = CmdChaos(args, out);
  } else if (command == "fleet") {
    st = CmdFleet(args, out);
  } else if (command == "help" || command == "--help") {
    out << kUsage;
    return 0;
  } else {
    err << "unknown command '" << command << "'\n" << kUsage;
    return 2;
  }
  if (!st.ok()) {
    err << "wsflow " << command << ": " << st.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace wsflow::cli
