// wsflow: CLI command layer.
//
// Each subcommand of the `wsflow` binary is a function taking its argument
// vector and the output stream, returning a Status — fully unit-testable
// without spawning processes. The thin main() in tools/wsflow_main.cc only
// dispatches.
//
// Subcommands:
//   generate        synthesize a workflow XML (line/bushy/lengthy/hybrid)
//   make-network    synthesize a network XML (bus/line/star/ring)
//   deploy          run one algorithm, print mapping + costs
//   evaluate        cost a given mapping
//   simulate        discrete-event-simulate a deployment
//   sample          bound the solution space by random sampling
//   compare         run every registered algorithm, print the comparison
//   experiment      run a paper-style multi-trial experiment (Class A/B/C)
//   response-times  per-operation completion times under a deployment
//   stats           structural workflow metrics
//   failover        per-server failure impact of a deployment
//   dot             GraphViz export of a workflow, network or deployment
//   list-algorithms registry contents
//   serve-bench     drive the concurrent deployment service (src/serve)
//                   with a synthetic request stream, report throughput,
//                   cache hit rate and latency percentiles
//   chaos           drive the service under a seeded fault schedule
//                   (src/sim/faults) with health tracking and self-healing
//                   repair; fully deterministic output, byte-identical
//                   across --threads
//   fleet           run the multi-tenant fleet controller (src/fleet): N
//                   tenants on one shared farm, seeded traffic drift,
//                   admission quotas, drift-triggered warm migration;
//                   deterministic output, byte-identical across --threads

#ifndef WSFLOW_CLI_COMMANDS_H_
#define WSFLOW_CLI_COMMANDS_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/deploy/mapping.h"

namespace wsflow::cli {

Status CmdGenerate(const std::vector<std::string>& args, std::ostream& out);
Status CmdMakeNetwork(const std::vector<std::string>& args,
                      std::ostream& out);
Status CmdDeploy(const std::vector<std::string>& args, std::ostream& out);
Status CmdEvaluate(const std::vector<std::string>& args, std::ostream& out);
Status CmdSimulate(const std::vector<std::string>& args, std::ostream& out);
Status CmdSample(const std::vector<std::string>& args, std::ostream& out);
Status CmdCompare(const std::vector<std::string>& args, std::ostream& out);
Status CmdExperiment(const std::vector<std::string>& args,
                     std::ostream& out);
Status CmdResponseTimes(const std::vector<std::string>& args,
                        std::ostream& out);
Status CmdStats(const std::vector<std::string>& args, std::ostream& out);
Status CmdFailover(const std::vector<std::string>& args, std::ostream& out);
Status CmdDot(const std::vector<std::string>& args, std::ostream& out);
Status CmdListAlgorithms(const std::vector<std::string>& args,
                         std::ostream& out);
Status CmdServeBench(const std::vector<std::string>& args, std::ostream& out);
Status CmdChaos(const std::vector<std::string>& args, std::ostream& out);
Status CmdFleet(const std::vector<std::string>& args, std::ostream& out);

/// Top-level dispatcher; argv[0] is ignored, argv[1] selects the
/// subcommand. Prints usage on errors. Returns the process exit code.
int RunCli(int argc, const char* const* argv, std::ostream& out,
           std::ostream& err);

/// Mapping spec: comma-separated server indices, one per operation in id
/// order — "2,0,1,1" deploys op0 on s2, op1 on s0, ...
Result<Mapping> ParseMappingSpec(const std::string& spec,
                                 size_t num_operations, size_t num_servers);

/// Inverse of ParseMappingSpec; the mapping must be total.
std::string FormatMappingSpec(const Mapping& m);

}  // namespace wsflow::cli

#endif  // WSFLOW_CLI_COMMANDS_H_
