// wsflow: experiment configurations (paper §4.1, Table 6).
//
// Constants from the paper's calibration on [NgCG04]/[HGSL+05]:
// SOAP messages of 873 B (simple), 7 581 B (medium) and 21 392 B (complex);
// the paper quotes them as 0.00666 / 0.057838 / 0.163208 Mbit, i.e. Mbit =
// 2^20 bits — we store exact bit counts (bytes * 8). Web-service operations
// weigh 5 M (simple), 50 M (medium) and 500 M (heavy) cycles; Class C draws
// operation costs from 10/20/30 Mcycles at 25/50/25%, server powers from
// 1/2/3 GHz at 25/50/25% and bus speeds from 10/100/1000 Mbps at 25/50/25%.
// The quality experiments additionally use a 1 Mbps bus.

#ifndef WSFLOW_EXP_CONFIG_H_
#define WSFLOW_EXP_CONFIG_H_

#include <optional>
#include <string>
#include <vector>

#include "src/exp/distributions.h"
#include "src/network/topology.h"
#include "src/workflow/generator.h"
#include "src/workflow/probability.h"
#include "src/workflow/workflow.h"

namespace wsflow {

namespace paperconst {

// Message sizes in bits ([NgCG04] measurements, §4.1).
inline constexpr double kSimpleMessageBits = 873.0 * 8;    // 6 984
inline constexpr double kMediumMessageBits = 7581.0 * 8;   // 60 648
inline constexpr double kComplexMessageBits = 21392.0 * 8; // 171 136

// Operation weights in cycles (§4.1).
inline constexpr double kSimpleOperationCycles = 5e6;
inline constexpr double kMediumOperationCycles = 50e6;
inline constexpr double kHeavyOperationCycles = 500e6;

// Class C operation-cost levels (Table 6).
inline constexpr double kClassCOpCyclesLow = 10e6;
inline constexpr double kClassCOpCyclesMid = 20e6;
inline constexpr double kClassCOpCyclesHigh = 30e6;

// Server powers (Table 6).
inline constexpr double kPower1GHz = 1e9;
inline constexpr double kPower2GHz = 2e9;
inline constexpr double kPower3GHz = 3e9;

// Bus speeds in bits/s (Table 6 plus the 1 Mbps quality setting).
inline constexpr double kBus1Mbps = 1e6;
inline constexpr double kBus10Mbps = 10e6;
inline constexpr double kBus100Mbps = 100e6;
inline constexpr double kBus1000Mbps = 1000e6;

}  // namespace paperconst

/// Workload families of the evaluation.
enum class WorkloadKind {
  kLine,          ///< §4.2 Line-Bus experiments.
  kBushyGraph,    ///< 50/50 decision/operational nodes.
  kLengthyGraph,  ///< 16/84.
  kHybridGraph,   ///< 35/65.
};

std::string_view WorkloadKindToString(WorkloadKind kind);

/// Network family drawn per trial. kBus reproduces the paper's shared
/// medium; the WAN families build zoned weighted topologies so the Class
/// A/B/C matrix also exercises the weighted router and the locality-aware
/// deployment variants.
enum class ExperimentTopology : uint8_t {
  kBus = 0,
  kFatTree,
  kHierarchical,
};

std::string_view ExperimentTopologyToString(ExperimentTopology t);
Result<ExperimentTopology> ExperimentTopologyFromString(const std::string& s);

/// One experiment: `trials` independently drawn (workflow, network) pairs.
struct ExperimentConfig {
  std::string name = "experiment";
  WorkloadKind workload = WorkloadKind::kLine;
  size_t num_operations = 19;
  /// Server count for kBus. The WAN families derive their count from the
  /// shape knobs below (spines + racks * rack_size, or regions * clusters *
  /// cluster_size) and ignore this field.
  size_t num_servers = 5;
  size_t trials = 50;
  uint64_t seed = 42;

  DiscreteDistribution message_bits;
  DiscreteDistribution operation_cycles;
  DiscreteDistribution server_power;
  /// Bus speed per trial; set `fixed_bus_speed_bps` to sweep specific
  /// speeds instead. Only consulted for kBus.
  DiscreteDistribution bus_speed;
  std::optional<double> fixed_bus_speed_bps;
  double bus_propagation_s = 0;

  /// Network family; kBus unless a WAN topology is requested.
  ExperimentTopology topology = ExperimentTopology::kBus;
  /// Shape and link-speed knobs for the WAN families. `powers_hz` inside
  /// is ignored — per-server powers are drawn from `server_power` in
  /// canonical server order, exactly like the bus draws them.
  FatTreeOptions fat_tree;
  HierarchicalOptions hierarchical;
};

/// Table 6 distributions (Class C): everything varies.
ExperimentConfig MakeClassCConfig(WorkloadKind workload);

/// Class A: link capacity and message sizes vary; CPU power and operation
/// costs are pinned to their Table 6 midpoints (§4.1).
ExperimentConfig MakeClassAConfig(WorkloadKind workload);

/// Class B: CPU power and operation costs vary; messages and bus speed are
/// pinned to their Table 6 midpoints (§4.1).
ExperimentConfig MakeClassBConfig(WorkloadKind workload);

/// The bus-speed sweep values of the figures: 1, 10, 100, 1000 Mbps.
std::vector<double> PaperBusSweepBps();

/// One drawn trial instance.
struct TrialInstance {
  Workflow workflow;
  Network network;
  /// Valid only for graph workloads.
  std::optional<ExecutionProfile> profile;
};

/// Draws the `trial_index`-th instance of `config` (deterministic in
/// (config.seed, trial_index)).
Result<TrialInstance> DrawTrial(const ExperimentConfig& config,
                                size_t trial_index);

}  // namespace wsflow

#endif  // WSFLOW_EXP_CONFIG_H_
