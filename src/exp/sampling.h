// wsflow: solution-space sampling for quality assessment (paper §4.1-4.2).
//
// The paper judges heuristic quality against the best of 32 000 uniformly
// sampled mappings ("each sample involved 32,000 potential solutions over
// search spaces from 32,000 to 10^19") and reports worst-case percentage
// deviations over 50 experiments, e.g. HOLM at (2.9%, 12%) for execution
// time / time penalty on a 1 Mbps bus. This module reproduces that
// machinery. When the true search space N^M is no larger than the sample
// budget, the sample enumerates it exhaustively instead.

#ifndef WSFLOW_EXP_SAMPLING_H_
#define WSFLOW_EXP_SAMPLING_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/cost/cost_model.h"
#include "src/cost/pareto.h"
#include "src/deploy/mapping.h"

namespace wsflow {

struct SamplingOptions {
  size_t samples = 32000;
  uint64_t seed = 0;
};

/// Per-objective minima and maxima over the sample (independently — the
/// best execution time and the best penalty usually come from different
/// mappings).
struct SampleBest {
  double best_execution_time = 0;
  double best_time_penalty = 0;
  double best_combined = 0;
  double worst_execution_time = 0;
  double worst_time_penalty = 0;
  /// The mapping attaining best_combined.
  Mapping best_combined_mapping;
  /// True when the whole space was enumerated (sample == exhaustive).
  bool exhaustive = false;
  size_t evaluated = 0;
};

/// Samples (or enumerates) the mapping space of `model`'s workflow/network.
Result<SampleBest> SampleSolutionSpace(const CostModel& model,
                                       const SamplingOptions& options,
                                       const CostOptions& cost_options = {});

/// Percentage deviation of `value` above `best` (0 when value <= best;
/// returns 0 when best == 0 and value == 0, +inf when best == 0 < value).
double DeviationPct(double value, double best);

/// Worst-case (max) deviations of one algorithm's points against per-trial
/// sample bests, the form the paper quotes.
struct QualityDeviation {
  double worst_execution_pct = 0;
  double worst_penalty_pct = 0;
  double mean_execution_pct = 0;
  double mean_penalty_pct = 0;
  size_t trials = 0;
};

/// Folds one trial into the running deviation record. Deviations are
/// *range-normalized regrets*: 100 * (value - best) / (worst - best) over
/// the sampled solution space, per objective. This keeps the statistic in
/// [0, 100] (values above 100 would mean "worse than every sampled
/// solution"), is robust to near-zero bests, and matches the magnitude of
/// the percentages the paper quotes. A degenerate objective (worst == best)
/// contributes 0.
void AccumulateDeviation(const ObjectivePoint& point, const SampleBest& best,
                         QualityDeviation* record);

}  // namespace wsflow

#endif  // WSFLOW_EXP_SAMPLING_H_
