// wsflow: experiment reporting — fixed-width console tables and CSV files.
//
// Benches print one table per paper figure in a stable text form and can
// drop the same data as CSV next to the binary for external plotting.

#ifndef WSFLOW_EXP_REPORT_H_
#define WSFLOW_EXP_REPORT_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/exp/runner.h"

namespace wsflow {

/// Simple fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; it must match the header width.
  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }

  /// Renders with column auto-sizing and a header rule.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an experiment result as the figures' summary table: one row per
/// algorithm with mean/stddev of both objectives.
TextTable SummaryTable(const ExperimentResult& result);

/// Writes rows as CSV (RFC-4180-style quoting).
Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// Renders per-trial scatter points (the raw figure data) as CSV rows:
/// algorithm, trial, execution_time, time_penalty.
std::vector<std::vector<std::string>> ScatterRows(
    const ExperimentResult& result);

}  // namespace wsflow

#endif  // WSFLOW_EXP_REPORT_H_
