#include "src/exp/runner.h"

#include "src/common/logging.h"
#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"

namespace wsflow {

Result<const AlgorithmSummary*> ExperimentResult::Find(
    const std::string& algorithm) const {
  for (const AlgorithmSummary& s : per_algorithm) {
    if (s.algorithm == algorithm) return &s;
  }
  return Status::NotFound("experiment has no summary for '" + algorithm +
                          "'");
}

std::vector<std::string> PaperBusAlgorithms() {
  return {"fair-load", "fltr", "fltr2", "fl-merge", "heavy-ops"};
}

Result<ExperimentResult> RunExperiment(
    const ExperimentConfig& config,
    const std::vector<std::string>& algorithms) {
  RegisterBuiltinAlgorithms();
  AlgorithmRegistry& registry = AlgorithmRegistry::Global();

  ExperimentResult result;
  result.name = config.name;
  std::vector<std::unique_ptr<DeploymentAlgorithm>> instances;
  for (const std::string& name : algorithms) {
    WSFLOW_ASSIGN_OR_RETURN(std::unique_ptr<DeploymentAlgorithm> algo,
                            registry.Create(name));
    instances.push_back(std::move(algo));
    result.per_algorithm.push_back(AlgorithmSummary{});
    result.per_algorithm.back().algorithm = name;
  }

  for (size_t trial = 0; trial < config.trials; ++trial) {
    WSFLOW_ASSIGN_OR_RETURN(TrialInstance instance, DrawTrial(config, trial));
    const ExecutionProfile* profile =
        instance.profile ? &*instance.profile : nullptr;
    CostModel model(instance.workflow, instance.network, profile);

    DeployContext ctx;
    ctx.workflow = &instance.workflow;
    ctx.network = &instance.network;
    ctx.profile = profile;
    ctx.seed = config.seed ^ (trial * 0x2545F4914F6CDD1DULL + 17);

    for (size_t i = 0; i < instances.size(); ++i) {
      AlgorithmSummary& summary = result.per_algorithm[i];
      Result<Mapping> mapping = instances[i]->Run(ctx);
      if (!mapping.ok()) {
        ++summary.failures;
        WSFLOW_LOG(Warning) << summary.algorithm << " failed trial " << trial
                            << ": " << mapping.status().ToString();
        continue;
      }
      Result<CostBreakdown> cost = model.Evaluate(*mapping);
      if (!cost.ok()) {
        ++summary.failures;
        WSFLOW_LOG(Warning) << summary.algorithm << " unevaluable on trial "
                            << trial << ": " << cost.status().ToString();
        continue;
      }
      summary.execution_time.Add(cost->execution_time);
      summary.time_penalty.Add(cost->time_penalty);
      summary.points.push_back(
          ObjectivePoint{cost->execution_time, cost->time_penalty});
    }
  }
  return result;
}

}  // namespace wsflow
