#include "src/exp/sampling.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/random.h"
#include "src/deploy/random_baseline.h"

namespace wsflow {

Result<SampleBest> SampleSolutionSpace(const CostModel& model,
                                       const SamplingOptions& options,
                                       const CostOptions& cost_options) {
  const size_t M = model.workflow().num_operations();
  const size_t N = model.network().num_servers();
  if (options.samples == 0) {
    return Status::InvalidArgument("sample budget must be >= 1");
  }

  SampleBest best;
  best.best_execution_time = std::numeric_limits<double>::infinity();
  best.best_time_penalty = std::numeric_limits<double>::infinity();
  best.best_combined = std::numeric_limits<double>::infinity();
  best.worst_execution_time = -std::numeric_limits<double>::infinity();
  best.worst_time_penalty = -std::numeric_limits<double>::infinity();

  auto consider = [&](const Mapping& m) -> Status {
    Result<CostBreakdown> cost = model.Evaluate(m, cost_options);
    if (!cost.ok()) return cost.status();
    ++best.evaluated;
    best.best_execution_time =
        std::min(best.best_execution_time, cost->execution_time);
    best.best_time_penalty =
        std::min(best.best_time_penalty, cost->time_penalty);
    best.worst_execution_time =
        std::max(best.worst_execution_time, cost->execution_time);
    best.worst_time_penalty =
        std::max(best.worst_time_penalty, cost->time_penalty);
    if (cost->combined < best.best_combined) {
      best.best_combined = cost->combined;
      best.best_combined_mapping = m;
    }
    return Status::OK();
  };

  double space = std::pow(static_cast<double>(N), static_cast<double>(M));
  if (space <= static_cast<double>(options.samples)) {
    // Small space: enumerate it exactly.
    best.exhaustive = true;
    std::vector<uint32_t> digits(M, 0);
    Mapping current(M);
    for (size_t i = 0; i < M; ++i) {
      current.Assign(OperationId(static_cast<uint32_t>(i)), ServerId(0));
    }
    for (;;) {
      WSFLOW_RETURN_IF_ERROR(consider(current));
      size_t pos = 0;
      while (pos < M) {
        if (++digits[pos] < N) {
          current.Assign(OperationId(static_cast<uint32_t>(pos)),
                         ServerId(digits[pos]));
          break;
        }
        digits[pos] = 0;
        current.Assign(OperationId(static_cast<uint32_t>(pos)), ServerId(0));
        ++pos;
      }
      if (pos == M) break;
    }
  } else {
    Rng rng(options.seed);
    for (size_t i = 0; i < options.samples; ++i) {
      Mapping m = RandomMapping(M, N, &rng);
      WSFLOW_RETURN_IF_ERROR(consider(m));
    }
  }
  return best;
}

double DeviationPct(double value, double best) {
  if (value <= best) return 0.0;
  if (best == 0.0) {
    return value == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return 100.0 * (value - best) / best;
}

namespace {

/// Range-normalized regret in percent; 0 when the objective is degenerate
/// over the sample.
double RangeRegretPct(double value, double lo, double hi) {
  if (hi <= lo) return 0.0;
  if (value <= lo) return 0.0;
  return 100.0 * (value - lo) / (hi - lo);
}

}  // namespace

void AccumulateDeviation(const ObjectivePoint& point, const SampleBest& best,
                         QualityDeviation* record) {
  double exec_pct =
      RangeRegretPct(point.execution_time, best.best_execution_time,
                     best.worst_execution_time);
  double penalty_pct = RangeRegretPct(
      point.time_penalty, best.best_time_penalty, best.worst_time_penalty);
  record->worst_execution_pct =
      std::max(record->worst_execution_pct, exec_pct);
  record->worst_penalty_pct =
      std::max(record->worst_penalty_pct, penalty_pct);
  // Running means.
  double n = static_cast<double>(record->trials);
  record->mean_execution_pct =
      (record->mean_execution_pct * n + exec_pct) / (n + 1);
  record->mean_penalty_pct =
      (record->mean_penalty_pct * n + penalty_pct) / (n + 1);
  ++record->trials;
}

}  // namespace wsflow
