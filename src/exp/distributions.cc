#include "src/exp/distributions.h"

#include <sstream>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace wsflow {

Result<DiscreteDistribution> DiscreteDistribution::Make(
    std::vector<std::pair<double, double>> entries) {
  if (entries.empty()) {
    return Status::InvalidArgument("empty distribution");
  }
  double total = 0;
  for (const auto& [value, prob] : entries) {
    if (prob < 0) {
      return Status::InvalidArgument("negative probability");
    }
    total += prob;
  }
  if (total <= 0) {
    return Status::InvalidArgument("probabilities sum to zero");
  }
  DiscreteDistribution d;
  for (const auto& [value, prob] : entries) {
    d.values_.push_back(value);
    d.probs_.push_back(prob / total);
  }
  return d;
}

DiscreteDistribution DiscreteDistribution::Constant(double value) {
  DiscreteDistribution d;
  d.values_.push_back(value);
  d.probs_.push_back(1.0);
  return d;
}

double DiscreteDistribution::Sample(Rng* rng) const {
  WSFLOW_CHECK(!empty());
  return values_[rng->NextDiscrete(probs_)];
}

double DiscreteDistribution::Mean() const {
  double mean = 0;
  for (size_t i = 0; i < values_.size(); ++i) {
    mean += values_[i] * probs_[i];
  }
  return mean;
}

Sampler DiscreteDistribution::ToSampler() const {
  return [this](Rng* rng) { return Sample(rng); };
}

std::string DiscreteDistribution::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) os << " ";
    os << FormatDouble(values_[i], 6) << "@"
       << FormatDouble(probs_[i] * 100, 4) << "%";
  }
  return os.str();
}

}  // namespace wsflow
