// wsflow: experiment runner.
//
// Executes an ExperimentConfig: draws each trial, runs every requested
// algorithm on it, evaluates execution time and time penalty, and
// aggregates per-algorithm summaries — the data behind the paper's
// scatter plots (Figs. 6-8).

#ifndef WSFLOW_EXP_RUNNER_H_
#define WSFLOW_EXP_RUNNER_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/stats.h"
#include "src/cost/pareto.h"
#include "src/exp/config.h"

namespace wsflow {

/// Aggregate outcome of one algorithm over the trials of one experiment.
struct AlgorithmSummary {
  std::string algorithm;
  SummaryStats execution_time;  ///< Seconds.
  SummaryStats time_penalty;    ///< Seconds.
  /// One (T_execute, TimePenalty) point per successful trial.
  std::vector<ObjectivePoint> points;
  size_t failures = 0;  ///< Trials where the algorithm returned an error.

  /// Mean point, the figures' marker position.
  ObjectivePoint MeanPoint() const {
    return {execution_time.mean(), time_penalty.mean()};
  }
};

struct ExperimentResult {
  std::string name;
  std::vector<AlgorithmSummary> per_algorithm;

  /// Summary for `algorithm`; NotFound when it did not run.
  Result<const AlgorithmSummary*> Find(const std::string& algorithm) const;
};

/// Runs `algorithms` (registry names) over all trials of `config`. An
/// algorithm failing a trial is counted, not fatal; an unknown algorithm
/// name is fatal.
Result<ExperimentResult> RunExperiment(
    const ExperimentConfig& config, const std::vector<std::string>& algorithms);

/// The §4.2 contenders for bus-based configurations, in the paper's order.
std::vector<std::string> PaperBusAlgorithms();

}  // namespace wsflow

#endif  // WSFLOW_EXP_RUNNER_H_
