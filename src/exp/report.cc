#include "src/exp/report.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace wsflow {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  WSFLOW_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << "\n";
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

TextTable SummaryTable(const ExperimentResult& result) {
  TextTable table({"algorithm", "exec_mean_ms", "exec_sd_ms",
                   "penalty_mean_ms", "penalty_sd_ms", "trials", "failures"});
  for (const AlgorithmSummary& s : result.per_algorithm) {
    table.AddRow({s.algorithm,
                  FormatDouble(s.execution_time.mean() * 1e3, 5),
                  FormatDouble(s.execution_time.stddev() * 1e3, 5),
                  FormatDouble(s.time_penalty.mean() * 1e3, 5),
                  FormatDouble(s.time_penalty.stddev() * 1e3, 5),
                  std::to_string(s.execution_time.count()),
                  std::to_string(s.failures)});
  }
  return table;
}

namespace {

std::string CsvQuote(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  auto emit = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << CsvQuote(row[i]);
    }
    out << '\n';
  };
  emit(header);
  for (const auto& row : rows) {
    if (row.size() != header.size()) {
      return Status::InvalidArgument("CSV row width mismatch");
    }
    emit(row);
  }
  out.close();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

std::vector<std::vector<std::string>> ScatterRows(
    const ExperimentResult& result) {
  std::vector<std::vector<std::string>> rows;
  for (const AlgorithmSummary& s : result.per_algorithm) {
    for (size_t i = 0; i < s.points.size(); ++i) {
      rows.push_back({s.algorithm, std::to_string(i),
                      FormatDouble(s.points[i].execution_time, 9),
                      FormatDouble(s.points[i].time_penalty, 9)});
    }
  }
  return rows;
}

}  // namespace wsflow
