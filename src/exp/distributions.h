// wsflow: discrete value distributions for experiment parameters.
//
// Table 6 of the paper draws every experimental quantity from a small
// discrete distribution (e.g. operation cost = 10/20/30 Mcycles with
// probability 25/50/25%). DiscreteDistribution captures that and converts
// to the generators' Sampler interface.

#ifndef WSFLOW_EXP_DISTRIBUTIONS_H_
#define WSFLOW_EXP_DISTRIBUTIONS_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/workflow/generator.h"

namespace wsflow {

class DiscreteDistribution {
 public:
  DiscreteDistribution() = default;

  /// Builds from (value, probability) pairs; probabilities need not be
  /// normalized but must be non-negative with a positive sum.
  static Result<DiscreteDistribution> Make(
      std::vector<std::pair<double, double>> entries);

  /// A point distribution always producing `value`.
  static DiscreteDistribution Constant(double value);

  bool empty() const { return values_.empty(); }
  const std::vector<double>& values() const { return values_; }
  /// Normalized probabilities, parallel to values().
  const std::vector<double>& probabilities() const { return probs_; }

  /// Draws one value.
  double Sample(Rng* rng) const;

  /// Expected value.
  double Mean() const;

  /// Adapter for the workflow generators. The distribution must outlive
  /// every call of the returned sampler.
  Sampler ToSampler() const;

  /// "10M@25% 20M@50% 30M@25%"-style rendering.
  std::string ToString() const;

 private:
  std::vector<double> values_;
  std::vector<double> probs_;
};

}  // namespace wsflow

#endif  // WSFLOW_EXP_DISTRIBUTIONS_H_
