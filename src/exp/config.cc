#include "src/exp/config.h"

#include "src/common/logging.h"

namespace wsflow {

using namespace paperconst;  // NOLINT(build/namespaces) — local constants

std::string_view WorkloadKindToString(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kLine: return "line";
    case WorkloadKind::kBushyGraph: return "bushy";
    case WorkloadKind::kLengthyGraph: return "lengthy";
    case WorkloadKind::kHybridGraph: return "hybrid";
  }
  return "unknown";
}

std::string_view ExperimentTopologyToString(ExperimentTopology t) {
  switch (t) {
    case ExperimentTopology::kBus: return "bus";
    case ExperimentTopology::kFatTree: return "fat-tree";
    case ExperimentTopology::kHierarchical: return "hier";
  }
  return "unknown";
}

Result<ExperimentTopology> ExperimentTopologyFromString(
    const std::string& s) {
  for (ExperimentTopology t :
       {ExperimentTopology::kBus, ExperimentTopology::kFatTree,
        ExperimentTopology::kHierarchical}) {
    if (ExperimentTopologyToString(t) == s) return t;
  }
  return Status::InvalidArgument("unknown --topology '" + s + "'");
}

namespace {

DiscreteDistribution MustMake(
    std::vector<std::pair<double, double>> entries) {
  Result<DiscreteDistribution> d = DiscreteDistribution::Make(std::move(entries));
  WSFLOW_CHECK(d.ok()) << d.status().ToString();
  return *d;
}

DiscreteDistribution Table6Messages() {
  return MustMake({{kSimpleMessageBits, 0.25},
                   {kMediumMessageBits, 0.50},
                   {kComplexMessageBits, 0.25}});
}

DiscreteDistribution Table6Cycles() {
  return MustMake({{kClassCOpCyclesLow, 0.25},
                   {kClassCOpCyclesMid, 0.50},
                   {kClassCOpCyclesHigh, 0.25}});
}

DiscreteDistribution Table6Power() {
  return MustMake(
      {{kPower1GHz, 0.25}, {kPower2GHz, 0.50}, {kPower3GHz, 0.25}});
}

DiscreteDistribution Table6Bus() {
  return MustMake(
      {{kBus10Mbps, 0.25}, {kBus100Mbps, 0.50}, {kBus1000Mbps, 0.25}});
}

ExperimentConfig BaseConfig(WorkloadKind workload, const std::string& cls) {
  ExperimentConfig cfg;
  cfg.workload = workload;
  cfg.name = "class-" + cls + "-" + std::string(WorkloadKindToString(workload));
  return cfg;
}

}  // namespace

ExperimentConfig MakeClassCConfig(WorkloadKind workload) {
  ExperimentConfig cfg = BaseConfig(workload, "c");
  cfg.message_bits = Table6Messages();
  cfg.operation_cycles = Table6Cycles();
  cfg.server_power = Table6Power();
  cfg.bus_speed = Table6Bus();
  return cfg;
}

ExperimentConfig MakeClassAConfig(WorkloadKind workload) {
  ExperimentConfig cfg = BaseConfig(workload, "a");
  cfg.message_bits = Table6Messages();
  cfg.bus_speed = Table6Bus();
  // Pinned at the Table 6 midpoints: only network-side quantities vary.
  cfg.operation_cycles = DiscreteDistribution::Constant(kClassCOpCyclesMid);
  cfg.server_power = DiscreteDistribution::Constant(kPower2GHz);
  return cfg;
}

ExperimentConfig MakeClassBConfig(WorkloadKind workload) {
  ExperimentConfig cfg = BaseConfig(workload, "b");
  cfg.operation_cycles = Table6Cycles();
  cfg.server_power = Table6Power();
  // Pinned: only compute-side quantities vary.
  cfg.message_bits = DiscreteDistribution::Constant(kMediumMessageBits);
  cfg.fixed_bus_speed_bps = kBus100Mbps;
  cfg.bus_speed = DiscreteDistribution::Constant(kBus100Mbps);
  return cfg;
}

std::vector<double> PaperBusSweepBps() {
  return {kBus1Mbps, kBus10Mbps, kBus100Mbps, kBus1000Mbps};
}

Result<TrialInstance> DrawTrial(const ExperimentConfig& config,
                                size_t trial_index) {
  if (config.message_bits.empty() || config.operation_cycles.empty() ||
      config.server_power.empty()) {
    return Status::InvalidArgument(
        "experiment config is missing a distribution");
  }
  if (config.topology == ExperimentTopology::kBus &&
      !config.fixed_bus_speed_bps && config.bus_speed.empty()) {
    return Status::InvalidArgument("experiment config has no bus speed");
  }
  // One independent stream per trial: reordering or subsetting trials does
  // not change what each one draws.
  Rng rng(config.seed * 0x9E3779B97F4A7C15ULL + trial_index + 1);

  TrialInstance instance;
  if (config.workload == WorkloadKind::kLine) {
    LineWorkflowParams params;
    params.name = config.name + "-t" + std::to_string(trial_index);
    params.num_operations = config.num_operations;
    params.cycles = config.operation_cycles.ToSampler();
    params.message_bits = config.message_bits.ToSampler();
    WSFLOW_ASSIGN_OR_RETURN(instance.workflow,
                            GenerateLineWorkflow(params, &rng));
  } else {
    GraphShape shape = GraphShape::kHybrid;
    if (config.workload == WorkloadKind::kBushyGraph) {
      shape = GraphShape::kBushy;
    } else if (config.workload == WorkloadKind::kLengthyGraph) {
      shape = GraphShape::kLengthy;
    }
    RandomGraphParams params = ParamsForShape(shape, config.num_operations);
    params.name = config.name + "-t" + std::to_string(trial_index);
    params.cycles = config.operation_cycles.ToSampler();
    params.message_bits = config.message_bits.ToSampler();
    WSFLOW_ASSIGN_OR_RETURN(instance.workflow,
                            GenerateRandomGraphWorkflow(params, &rng));
    WSFLOW_ASSIGN_OR_RETURN(ExecutionProfile profile,
                            ComputeExecutionProfile(instance.workflow));
    instance.profile = std::move(profile);
  }

  size_t num_servers = config.num_servers;
  if (config.topology == ExperimentTopology::kFatTree) {
    num_servers = config.fat_tree.spines +
                  config.fat_tree.racks * config.fat_tree.rack_size;
  } else if (config.topology == ExperimentTopology::kHierarchical) {
    num_servers = config.hierarchical.regions *
                  config.hierarchical.clusters_per_region *
                  config.hierarchical.cluster_size;
  }
  std::vector<double> powers(num_servers);
  for (double& p : powers) p = config.server_power.Sample(&rng);
  switch (config.topology) {
    case ExperimentTopology::kBus: {
      double bus = config.fixed_bus_speed_bps ? *config.fixed_bus_speed_bps
                                              : config.bus_speed.Sample(&rng);
      WSFLOW_ASSIGN_OR_RETURN(
          instance.network,
          MakeBusNetwork(powers, bus, config.bus_propagation_s));
      break;
    }
    case ExperimentTopology::kFatTree: {
      FatTreeOptions opts = config.fat_tree;
      opts.powers_hz = powers;
      WSFLOW_ASSIGN_OR_RETURN(instance.network, MakeFatTreeNetwork(opts));
      break;
    }
    case ExperimentTopology::kHierarchical: {
      HierarchicalOptions opts = config.hierarchical;
      opts.powers_hz = powers;
      WSFLOW_ASSIGN_OR_RETURN(instance.network,
                              MakeHierarchicalNetwork(opts));
      break;
    }
  }
  return instance;
}

}  // namespace wsflow
