// wsflow: metrics registry of the deployment service.
//
// Counters are lock-free atomics bumped on every event; latency samples go
// into per-kind ring buffers behind a mutex (a bounded sliding window, so
// a long-running service never grows without bound). Snapshot() renders a
// consistent point-in-time view with p50/p95/p99 computed exactly on a
// sorted copy (src/common/stats) — histogram maintenance costs nothing on
// the hot path, the sort happens only when someone asks.

#ifndef WSFLOW_SERVE_METRICS_H_
#define WSFLOW_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace wsflow::serve {

/// Point-in-time percentile summary of one latency population (seconds).
struct LatencySummary {
  size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// Consistent snapshot of every counter and histogram.
struct MetricsSnapshot {
  uint64_t submitted = 0;          ///< Requests accepted into the queue.
  uint64_t rejected_queue_full = 0;///< Submissions refused (backpressure).
  uint64_t deadline_exceeded = 0;  ///< Popped after their deadline.
  uint64_t cache_hits = 0;         ///< Served from the result cache.
  uint64_t cache_misses = 0;       ///< Cold runs (successful or failed).
  uint64_t failures = 0;           ///< Cold runs that returned an error.
  uint64_t completed = 0;          ///< Responses delivered with OK status.
  uint64_t degraded = 0;           ///< Stale last-good responses (churn).
  uint64_t repairs = 0;            ///< Successful repair-search runs.
  uint64_t repair_failures = 0;    ///< Repair runs ending still severed.

  // Fleet-controller events (multi-tenant serving, src/fleet).
  uint64_t tenants_admitted = 0;   ///< Tenants deployed onto the farm.
  uint64_t tenants_queued = 0;     ///< Tenants parked for lack of capacity.
  uint64_t tenants_rejected = 0;   ///< Tenants refused on the quota.
  uint64_t migrations = 0;         ///< Drift migrations that landed.
  uint64_t migration_stalls = 0;   ///< Migration polishes with no better map.

  LatencySummary hit_latency;   ///< Worker time of cache-hit requests.
  LatencySummary miss_latency;  ///< Worker time of cold requests.
  LatencySummary queue_wait;    ///< Time from Submit to worker pickup.
  LatencySummary shed_queue_wait;  ///< Queue residency of shed requests
                                   ///< (deadline already exceeded at pickup).

  /// cache_hits / (cache_hits + cache_misses); 0 when nothing resolved.
  double HitRate() const;

  /// Multi-line text report.
  std::string ToString() const;
};

class ServeMetrics {
 public:
  /// Latency samples kept per population; older samples are overwritten
  /// once the window is full (percentiles then describe the recent past).
  static constexpr size_t kMaxSamples = 1 << 16;

  void RecordSubmitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void RecordRejected() {
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordDeadlineExceeded() {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Shed request with its queue residency — how long it sat before the
  /// service noticed its deadline had passed (the observability gap the
  /// bare counter left open: was the deadline tight, or the queue deep?).
  void RecordDeadlineExceeded(double queue_wait_s);
  void RecordCompleted() { completed_.fetch_add(1, std::memory_order_relaxed); }
  void RecordFailure() { failures_.fetch_add(1, std::memory_order_relaxed); }
  /// A stale last-good mapping served while repair catches up with churn.
  void RecordDegraded() { degraded_.fetch_add(1, std::memory_order_relaxed); }
  /// A repair search that produced a routable mapping.
  void RecordRepair() { repairs_.fetch_add(1, std::memory_order_relaxed); }
  /// A repair search that ended with the mapping still severed.
  void RecordRepairFailure() {
    repair_failures_.fetch_add(1, std::memory_order_relaxed);
  }

  /// A tenant admitted and deployed onto the shared farm.
  void RecordTenantAdmitted() {
    tenants_admitted_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A tenant queued until drift frees farm capacity.
  void RecordTenantQueued() {
    tenants_queued_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A tenant whose demand breaches the per-tenant quota.
  void RecordTenantRejected() {
    tenants_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A drift migration that landed a strictly better mapping.
  void RecordMigration() {
    migrations_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A migration polish that found nothing better (already optimal or out
  /// of budget).
  void RecordMigrationStall() {
    migration_stalls_.fetch_add(1, std::memory_order_relaxed);
  }

  /// A cache hit served in `service_s` worker seconds.
  void RecordHit(double service_s);
  /// A cold run taking `service_s` worker seconds.
  void RecordMiss(double service_s);
  /// Queue residency of one request, Submit to pickup.
  void RecordQueueWait(double wait_s);

  MetricsSnapshot Snapshot() const;

 private:
  /// Mutex-guarded sliding window of samples.
  struct SampleWindow {
    mutable std::mutex mu;
    std::vector<double> samples;
    uint64_t total = 0;    ///< Lifetime count (>= samples.size()).
    double sum = 0;        ///< Lifetime sum, for the true mean.
    double max = 0;        ///< Lifetime max.

    void Add(double x);
    LatencySummary Summarize() const;
  };

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> repairs_{0};
  std::atomic<uint64_t> repair_failures_{0};
  std::atomic<uint64_t> tenants_admitted_{0};
  std::atomic<uint64_t> tenants_queued_{0};
  std::atomic<uint64_t> tenants_rejected_{0};
  std::atomic<uint64_t> migrations_{0};
  std::atomic<uint64_t> migration_stalls_{0};

  SampleWindow hit_latency_;
  SampleWindow miss_latency_;
  SampleWindow queue_wait_;
  SampleWindow shed_queue_wait_;
};

}  // namespace wsflow::serve

#endif  // WSFLOW_SERVE_METRICS_H_
