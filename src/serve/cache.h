// wsflow: sharded LRU result cache of the deployment service.
//
// Keyed by the canonical request fingerprint (serve/fingerprint.h), so a
// hit is guaranteed to carry exactly the response the cold path would
// recompute. Sharding spreads lock contention: each shard owns an
// independent mutex, hash map and recency list, and a key's shard is a
// pure function of its fingerprint. Entries are immutable and handed out
// as shared_ptr, so a reader keeps its entry alive even if the shard
// evicts it concurrently.

#ifndef WSFLOW_SERVE_CACHE_H_
#define WSFLOW_SERVE_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/deploy/mapping.h"
#include "src/serve/fingerprint.h"

namespace wsflow::serve {

/// Immutable cached outcome of one cold placement run.
struct CacheEntry {
  Mapping mapping;
  CostBreakdown cost;
  /// True when the mapping came out of the self-healing repair search
  /// rather than a from-scratch placement (serve/service.h degradation
  /// flow); hits on it propagate the flag into DeployResponse::repaired.
  bool repaired = false;
};

struct CacheOptions {
  /// Total entry budget across all shards (minimum one per shard).
  size_t capacity = 4096;
  /// Number of independent shards; clamped to [1, capacity].
  size_t shards = 16;
};

class ResultCache {
 public:
  using Options = CacheOptions;

  explicit ResultCache(Options options = Options());

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the entry for `key` and marks it most-recently-used; null on
  /// miss.
  std::shared_ptr<const CacheEntry> Lookup(const Fingerprint& key);

  /// Inserts (or refreshes) `key`, evicting the shard's least-recently-used
  /// entry when the shard is at capacity.
  void Insert(const Fingerprint& key, CacheEntry entry);

  /// Entries currently resident, summed over shards.
  size_t size() const;

  /// Total capacity actually provisioned (shards * per-shard capacity).
  size_t capacity() const;

  size_t num_shards() const { return shards_.size(); }

  /// Drops every entry.
  void Clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<Fingerprint, std::shared_ptr<const CacheEntry>>> lru;
    std::unordered_map<Fingerprint, decltype(lru)::iterator,
                       Fingerprint::Hash>
        index;
  };

  Shard& ShardFor(const Fingerprint& key);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace wsflow::serve

#endif  // WSFLOW_SERVE_CACHE_H_
