#include "src/serve/request.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "src/workflow/operation.h"

namespace wsflow::serve {

namespace {

/// Round-trip exact double rendering ("%.17g") so that payload equality is
/// bit-for-bit, not print-precision equality.
std::string ExactDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string DeployResponse::CanonicalPayload() const {
  std::ostringstream os;
  os << "status=" << status.ToString() << ";mapping=";
  for (size_t i = 0; i < mapping.num_operations(); ++i) {
    if (i > 0) os << ",";
    ServerId s = mapping.ServerOf(OperationId(static_cast<uint32_t>(i)));
    if (s.valid()) {
      os << s.value;
    } else {
      os << "-";
    }
  }
  os << ";exec=" << ExactDouble(cost.execution_time)
     << ";penalty=" << ExactDouble(cost.time_penalty)
     << ";combined=" << ExactDouble(cost.combined);
  return os.str();
}

}  // namespace wsflow::serve
