// wsflow: canonical request fingerprints for the result cache.
//
// Two requests that must produce identical responses — same workflow
// content, same network content, same algorithm, same objective weights,
// same seed — hash to the same 128-bit Fingerprint; anything that can
// change the answer perturbs it. Workflow and network content is digested
// through the canonical XML serialization (src/workflow/serialization,
// src/network/serialization), so logically equal objects fingerprint
// equally regardless of how they were built.

#ifndef WSFLOW_SERVE_FINGERPRINT_H_
#define WSFLOW_SERVE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/network/topology.h"
#include "src/serve/request.h"
#include "src/workflow/workflow.h"

namespace wsflow::serve {

/// 128-bit content hash: two independent 64-bit FNV-1a streams. The pair
/// makes accidental collisions in a long-lived cache implausible.
struct Fingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }

  /// 32 hex digits, hi first.
  std::string ToHex() const;

  struct Hash {
    size_t operator()(const Fingerprint& f) const {
      // lo and hi are already uniform; fold them.
      return static_cast<size_t>(f.lo ^ (f.hi * 0x9E3779B97F4A7C15ull));
    }
  };
};

/// 64-bit FNV-1a over `bytes`, chained from `seed` (pass the previous hash
/// to extend a stream).
uint64_t Fnv1a64(std::string_view bytes, uint64_t seed);

/// Content digest of a workflow (FNV-1a over its canonical XML form).
/// Never returns 0, so 0 can mean "not precomputed" in DeployRequest.
uint64_t WorkflowDigest(const Workflow& w);

/// Content digest of a network (FNV-1a over its canonical XML form).
/// Never returns 0.
uint64_t NetworkDigest(const Network& n);

/// Cache key of a request: combines the workflow digest, network digest,
/// algorithm name, objective weights and seed. Uses the request's
/// precomputed digests when set (non-zero), otherwise serializes and
/// digests the referenced objects. The workflow and network pointers must
/// be non-null unless both digests are precomputed.
Fingerprint RequestFingerprint(const DeployRequest& request);

/// Derives the cache key of `base` under a server mask: mixes the mask's
/// digest into both streams. A digest of 0 (the trivial all-alive mask,
/// ServerMask::Digest) is the identity — the masked key IS the base key,
/// so full-health serving never pays a second cache population.
Fingerprint WithMaskDigest(const Fingerprint& base, uint64_t mask_digest);

}  // namespace wsflow::serve

#endif  // WSFLOW_SERVE_FINGERPRINT_H_
