// wsflow: bounded multi-producer multi-consumer queue with backpressure.
//
// The service's admission point. Producers never block: TryPush fails fast
// with ResourceExhausted when the queue is at capacity, which is the
// backpressure signal a caller can act on (shed, retry, degrade).
// Consumers block in Pop until an item arrives or the queue is closed and
// drained — Close() is the shutdown handshake that lets workers finish
// every accepted request before exiting.

#ifndef WSFLOW_SERVE_QUEUE_H_
#define WSFLOW_SERVE_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/common/logging.h"
#include "src/common/status.h"

namespace wsflow::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    WSFLOW_CHECK_GT(capacity_, 0u) << "queue capacity must be positive";
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item` if there is room. Fails with ResourceExhausted when
  /// full (backpressure) and FailedPrecondition after Close(). On failure
  /// `item` is left unmoved so the caller can retry.
  Status TryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return Status::FailedPrecondition("queue is closed");
      }
      if (items_.size() >= capacity_) {
        return Status::ResourceExhausted("queue is full");
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::OK();
  }

  /// Rvalue convenience; the item is lost on failure, so use the lvalue
  /// overload when retrying.
  Status TryPush(T&& item) { return TryPush(item); }

  /// Blocks until an item is available and moves it into `*out`, returning
  /// true. Returns false once the queue is closed and fully drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking variant.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    return out;
  }

  /// Rejects further pushes and wakes every blocked consumer. Items already
  /// accepted remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace wsflow::serve

#endif  // WSFLOW_SERVE_QUEUE_H_
