// wsflow: request/response types of the deployment service.
//
// A DeployRequest bundles everything one placement query needs: the
// workflow, the server network, the algorithm to run, the objective
// weights and an optional deadline. Requests own their inputs through
// shared_ptr so that a caller may enqueue a request and move on — the
// service keeps the data alive until the response is delivered.

#ifndef WSFLOW_SERVE_REQUEST_H_
#define WSFLOW_SERVE_REQUEST_H_

#include <chrono>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/cost/cost_model.h"
#include "src/deploy/mapping.h"
#include "src/network/topology.h"
#include "src/workflow/probability.h"
#include "src/workflow/workflow.h"

namespace wsflow::serve {

/// Clock used for deadlines and latency accounting.
using ServiceClock = std::chrono::steady_clock;

/// One placement query.
struct DeployRequest {
  std::shared_ptr<const Workflow> workflow;
  std::shared_ptr<const Network> network;
  /// Execution probabilities for graph workflows; when null the service
  /// computes a profile on the cold path (line workflows need none).
  std::shared_ptr<const ExecutionProfile> profile;
  /// Registry name of the algorithm to run.
  std::string algorithm = "portfolio";
  /// Objective weights forwarded into DeployContext::cost_options.
  CostOptions cost_options;
  /// Seed for randomized algorithm steps; part of the cache key.
  uint64_t seed = 0;
  /// Absolute deadline; requests popped after it return DeadlineExceeded
  /// without running. max() means "no deadline".
  ServiceClock::time_point deadline = ServiceClock::time_point::max();
  /// Optional precomputed content digests (see serve/fingerprint.h). A
  /// caller issuing many queries against the same artifacts digests them
  /// once; 0 means "compute from the object".
  uint64_t workflow_digest = 0;
  uint64_t network_digest = 0;
};

/// Outcome of one placement query.
struct DeployResponse {
  /// OK, DeadlineExceeded, or the algorithm / cost-model error.
  Status status;
  /// Total mapping; meaningful only when status is OK.
  Mapping mapping;
  /// Costs under the request's weights; meaningful only when status is OK.
  CostBreakdown cost;
  /// True when the response was served from the result cache.
  bool cache_hit = false;
  /// True when the mapping is a stale last-good answer served while the
  /// repair search catches up with server churn — it may still place
  /// operations on down servers. Status stays OK.
  bool degraded = false;
  /// True when the mapping came from the self-healing repair search
  /// against the surviving subnetwork (directly or via a cached repaired
  /// entry).
  bool repaired = false;
  /// Seconds spent queued before a worker picked the request up.
  double queue_wait_s = 0;
  /// Seconds of worker processing (fingerprint + cache or cold run).
  double service_time_s = 0;

  /// Canonical rendering of the result payload (status, mapping, costs) —
  /// excludes delivery metadata (cache_hit, timings) so that a cache hit
  /// and the cold computation it replays render byte-identically.
  std::string CanonicalPayload() const;
};

}  // namespace wsflow::serve

#endif  // WSFLOW_SERVE_REQUEST_H_
