#include "src/serve/service.h"

#include <chrono>
#include <cmath>
#include <optional>
#include <utility>

#include "src/common/string_util.h"
#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/repair.h"
#include "src/workflow/probability.h"

namespace wsflow::serve {

namespace {

double SecondsSince(ServiceClock::time_point start,
                    ServiceClock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

DeploymentService::DeploymentService(ServiceOptions options)
    : options_(options),
      queue_(options.queue_capacity),
      cache_({.capacity = options.cache_capacity,
              .shards = options.cache_shards}) {
  if (options_.num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    options_.num_threads = hw == 0 ? 1 : hw;
  }
  // Populate the registry before any worker can race a lazy registration.
  RegisterBuiltinAlgorithms();
}

DeploymentService::~DeploymentService() { Stop(); }

Status DeploymentService::Start() {
  if (stopped_) return Status::FailedPrecondition("service already stopped");
  if (started_) return Status::FailedPrecondition("service already started");
  started_ = true;
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void DeploymentService::Stop() {
  if (stopped_) return;
  stopped_ = true;
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Never started: drain inline so every accepted request still gets its
  // response (started workers have already drained the queue via Pop).
  while (auto item = queue_.TryPop()) {
    Pending& p = *item;
    double wait_s = SecondsSince(p.enqueued_at, ServiceClock::now());
    metrics_.RecordQueueWait(wait_s);
    DeployResponse response = Process(p.request, wait_s);
    response.queue_wait_s = wait_s;
    p.promise.set_value(std::move(response));
  }
}

Result<std::future<DeployResponse>> DeploymentService::Submit(
    DeployRequest request) {
  if (request.workflow == nullptr || request.network == nullptr) {
    // Digests alone cannot serve a cold miss; the objects are mandatory.
    return Status::InvalidArgument(
        "request needs both a workflow and a network");
  }
  if (!AlgorithmRegistry::Global().Contains(request.algorithm)) {
    return Status::NotFound("no algorithm named '" + request.algorithm + "'");
  }

  Pending pending;
  pending.request = std::move(request);
  pending.enqueued_at = ServiceClock::now();
  std::future<DeployResponse> future = pending.promise.get_future();
  Status st = queue_.TryPush(pending);
  if (!st.ok()) {
    if (st.IsResourceExhausted()) metrics_.RecordRejected();
    return st;
  }
  metrics_.RecordSubmitted();
  return future;
}

void DeploymentService::WorkerLoop() {
  Pending pending;
  while (queue_.Pop(&pending)) {
    ServiceClock::time_point picked_up = ServiceClock::now();
    double wait_s = SecondsSince(pending.enqueued_at, picked_up);
    metrics_.RecordQueueWait(wait_s);
    DeployResponse response = Process(pending.request, wait_s);
    response.queue_wait_s = wait_s;
    pending.promise.set_value(std::move(response));
  }
}

DeployResponse DeploymentService::Process(const DeployRequest& request,
                                          double queue_wait_s) {
  DeployResponse response;
  ServiceClock::time_point start = ServiceClock::now();
  if (start >= request.deadline) {
    metrics_.RecordDeadlineExceeded(queue_wait_s);
    response.status = Status::DeadlineExceeded(
        "request expired before execution (queued " +
        FormatSeconds(queue_wait_s) + ")");
    response.service_time_s = SecondsSince(start, ServiceClock::now());
    return response;
  }

  // The alive mask salts the cache key (WithMaskDigest is the identity at
  // full health), so answers under different churn states never collide
  // and recovery falls straight back to the full-health entries. A tracker
  // sized for a different network than this request's is ignored.
  Fingerprint base_fp = RequestFingerprint(request);
  ServerMask alive;
  if (options_.health != nullptr &&
      options_.health->num_servers() == request.network->num_servers()) {
    alive = options_.health->AliveMask();
  }
  const bool masked = !alive.trivial();
  Fingerprint fp = masked ? WithMaskDigest(base_fp, alive.Digest()) : base_fp;

  if (std::shared_ptr<const CacheEntry> entry = cache_.Lookup(fp)) {
    response.mapping = entry->mapping;
    response.cost = entry->cost;
    response.cache_hit = true;
    response.repaired = entry->repaired;
    response.service_time_s = SecondsSince(start, ServiceClock::now());
    metrics_.RecordHit(response.service_time_s);
    metrics_.RecordCompleted();
    return response;
  }

  // Resolve the execution profile once; the churn paths and the cold path
  // all need a cost model.
  std::optional<ExecutionProfile> local_profile;
  const ExecutionProfile* profile = request.profile.get();
  Status st;
  if (profile == nullptr && !request.workflow->IsLine()) {
    Result<ExecutionProfile> computed =
        ComputeExecutionProfile(*request.workflow);
    if (computed.ok()) {
      local_profile = std::move(*computed);
      profile = &*local_profile;
    } else {
      st = computed.status().WithContext("execution profile");
    }
  }

  if (masked && st.ok()) {
    if (std::shared_ptr<const CacheEntry> last_good = cache_.Lookup(base_fp)) {
      CostModel model(*request.workflow, *request.network, profile);
      Result<CostBreakdown> masked_cost =
          model.Evaluate(last_good->mapping, request.cost_options, alive);
      if (masked_cost.ok()) {
        // The last-good mapping survives the churn untouched — re-key it
        // under the masked fingerprint with its surviving-subnetwork cost.
        response.mapping = last_good->mapping;
        response.cost = *masked_cost;
        response.cache_hit = true;
        response.repaired = last_good->repaired;
        cache_.Insert(fp, CacheEntry{response.mapping, response.cost,
                                     last_good->repaired});
        response.service_time_s = SecondsSince(start, ServiceClock::now());
        metrics_.RecordHit(response.service_time_s);
        metrics_.RecordCompleted();
        return response;
      }

      // Graceful degradation: the stale last-good answer goes out now —
      // status OK, flagged degraded — and the repair search heals the
      // entry before this response returns, so the next request under the
      // same mask is served repaired. Synchronous on purpose: the healed
      // entry is visible the moment the caller's future resolves, which
      // keeps serialized chaos runs byte-identical across worker counts.
      response.mapping = last_good->mapping;
      response.cost = last_good->cost;
      response.cache_hit = true;
      response.degraded = true;
      metrics_.RecordDegraded();

      RepairOptions ropts;
      ropts.eval_budget = options_.repair_eval_budget;
      ropts.cost_options = request.cost_options;
      Result<RepairResult> rep =
          RepairMapping(model, last_good->mapping, alive, ropts);
      if (rep.ok() && std::isfinite(rep->cost.combined)) {
        cache_.Insert(fp, CacheEntry{rep->mapping, rep->cost, true});
        metrics_.RecordRepair();
      } else {
        metrics_.RecordRepairFailure();
      }

      response.service_time_s = SecondsSince(start, ServiceClock::now());
      metrics_.RecordHit(response.service_time_s);
      metrics_.RecordCompleted();
      return response;
    }
  }

  // Cold path: build the context, run the algorithm, cost the mapping
  // under the request's weights.
  DeployContext ctx;
  ctx.workflow = request.workflow.get();
  ctx.network = request.network.get();
  ctx.profile = profile;
  ctx.seed = request.seed;
  ctx.cost_options = request.cost_options;

  if (st.ok()) {
    Result<Mapping> mapping = RunAlgorithm(request.algorithm, ctx);
    if (mapping.ok()) {
      CostModel model(*ctx.workflow, *ctx.network, ctx.profile);
      Result<CostBreakdown> cost =
          model.Evaluate(*mapping, ctx.cost_options);
      if (cost.ok()) {
        response.mapping = std::move(*mapping);
        response.cost = *cost;
        cache_.Insert(base_fp, CacheEntry{response.mapping, response.cost});
        if (masked) {
          // The algorithm placed over the full network; score the answer
          // against the survivors, repairing it when churn severed it.
          Result<CostBreakdown> masked_cost =
              model.Evaluate(response.mapping, ctx.cost_options, alive);
          if (masked_cost.ok()) {
            response.cost = *masked_cost;
            cache_.Insert(fp, CacheEntry{response.mapping, response.cost});
          } else {
            RepairOptions ropts;
            ropts.eval_budget = options_.repair_eval_budget;
            ropts.cost_options = ctx.cost_options;
            Result<RepairResult> rep =
                RepairMapping(model, response.mapping, alive, ropts);
            if (rep.ok() && std::isfinite(rep->cost.combined)) {
              response.mapping = rep->mapping;
              response.cost = rep->cost;
              response.repaired = true;
              cache_.Insert(fp, CacheEntry{response.mapping, response.cost,
                                           true});
              metrics_.RecordRepair();
            } else {
              metrics_.RecordRepairFailure();
              st = (rep.ok() ? masked_cost.status() : rep.status())
                       .WithContext("repair on the surviving subnetwork");
            }
          }
        }
      } else {
        st = cost.status().WithContext("cost evaluation");
      }
    } else {
      st = mapping.status().WithContext(request.algorithm);
    }
  }

  response.status = st;
  response.service_time_s = SecondsSince(start, ServiceClock::now());
  metrics_.RecordMiss(response.service_time_s);
  if (st.ok()) {
    metrics_.RecordCompleted();
  } else {
    metrics_.RecordFailure();
  }
  return response;
}

}  // namespace wsflow::serve
