#include "src/serve/service.h"

#include <chrono>
#include <optional>
#include <utility>

#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/workflow/probability.h"

namespace wsflow::serve {

namespace {

double SecondsSince(ServiceClock::time_point start,
                    ServiceClock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

DeploymentService::DeploymentService(ServiceOptions options)
    : options_(options),
      queue_(options.queue_capacity),
      cache_({.capacity = options.cache_capacity,
              .shards = options.cache_shards}) {
  if (options_.num_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    options_.num_threads = hw == 0 ? 1 : hw;
  }
  // Populate the registry before any worker can race a lazy registration.
  RegisterBuiltinAlgorithms();
}

DeploymentService::~DeploymentService() { Stop(); }

Status DeploymentService::Start() {
  if (stopped_) return Status::FailedPrecondition("service already stopped");
  if (started_) return Status::FailedPrecondition("service already started");
  started_ = true;
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void DeploymentService::Stop() {
  if (stopped_) return;
  stopped_ = true;
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Never started: drain inline so every accepted request still gets its
  // response (started workers have already drained the queue via Pop).
  while (auto item = queue_.TryPop()) {
    Pending& p = *item;
    metrics_.RecordQueueWait(
        SecondsSince(p.enqueued_at, ServiceClock::now()));
    p.promise.set_value(Process(p.request));
  }
}

Result<std::future<DeployResponse>> DeploymentService::Submit(
    DeployRequest request) {
  if (request.workflow == nullptr || request.network == nullptr) {
    // Digests alone cannot serve a cold miss; the objects are mandatory.
    return Status::InvalidArgument(
        "request needs both a workflow and a network");
  }
  if (!AlgorithmRegistry::Global().Contains(request.algorithm)) {
    return Status::NotFound("no algorithm named '" + request.algorithm + "'");
  }

  Pending pending;
  pending.request = std::move(request);
  pending.enqueued_at = ServiceClock::now();
  std::future<DeployResponse> future = pending.promise.get_future();
  Status st = queue_.TryPush(pending);
  if (!st.ok()) {
    if (st.IsResourceExhausted()) metrics_.RecordRejected();
    return st;
  }
  metrics_.RecordSubmitted();
  return future;
}

void DeploymentService::WorkerLoop() {
  Pending pending;
  while (queue_.Pop(&pending)) {
    ServiceClock::time_point picked_up = ServiceClock::now();
    double wait_s = SecondsSince(pending.enqueued_at, picked_up);
    metrics_.RecordQueueWait(wait_s);
    DeployResponse response = Process(pending.request);
    response.queue_wait_s = wait_s;
    pending.promise.set_value(std::move(response));
  }
}

DeployResponse DeploymentService::Process(const DeployRequest& request) {
  DeployResponse response;
  ServiceClock::time_point start = ServiceClock::now();
  if (start >= request.deadline) {
    metrics_.RecordDeadlineExceeded();
    response.status =
        Status::DeadlineExceeded("request expired before execution");
    response.service_time_s = SecondsSince(start, ServiceClock::now());
    return response;
  }

  Fingerprint fp = RequestFingerprint(request);
  if (std::shared_ptr<const CacheEntry> entry = cache_.Lookup(fp)) {
    response.mapping = entry->mapping;
    response.cost = entry->cost;
    response.cache_hit = true;
    response.service_time_s = SecondsSince(start, ServiceClock::now());
    metrics_.RecordHit(response.service_time_s);
    metrics_.RecordCompleted();
    return response;
  }

  // Cold path: build the context, compute a profile if the workflow needs
  // one and the caller did not provide it, run the algorithm, cost the
  // mapping under the request's weights.
  DeployContext ctx;
  ctx.workflow = request.workflow.get();
  ctx.network = request.network.get();
  ctx.profile = request.profile.get();
  ctx.seed = request.seed;
  ctx.cost_options = request.cost_options;

  std::optional<ExecutionProfile> local_profile;
  Status st;
  if (ctx.profile == nullptr && !request.workflow->IsLine()) {
    Result<ExecutionProfile> profile =
        ComputeExecutionProfile(*request.workflow);
    if (profile.ok()) {
      local_profile = std::move(*profile);
      ctx.profile = &*local_profile;
    } else {
      st = profile.status().WithContext("execution profile");
    }
  }

  if (st.ok()) {
    Result<Mapping> mapping = RunAlgorithm(request.algorithm, ctx);
    if (mapping.ok()) {
      CostModel model(*ctx.workflow, *ctx.network, ctx.profile);
      Result<CostBreakdown> cost =
          model.Evaluate(*mapping, ctx.cost_options);
      if (cost.ok()) {
        response.mapping = std::move(*mapping);
        response.cost = *cost;
        cache_.Insert(fp, CacheEntry{response.mapping, response.cost});
      } else {
        st = cost.status().WithContext("cost evaluation");
      }
    } else {
      st = mapping.status().WithContext(request.algorithm);
    }
  }

  response.status = st;
  response.service_time_s = SecondsSince(start, ServiceClock::now());
  metrics_.RecordMiss(response.service_time_s);
  if (st.ok()) {
    metrics_.RecordCompleted();
  } else {
    metrics_.RecordFailure();
  }
  return response;
}

}  // namespace wsflow::serve
