#include "src/serve/cache.h"

#include <algorithm>

namespace wsflow::serve {

ResultCache::ResultCache(Options options) {
  size_t shards = std::clamp<size_t>(options.shards, 1,
                                     std::max<size_t>(options.capacity, 1));
  per_shard_capacity_ =
      std::max<size_t>(1, (std::max<size_t>(options.capacity, 1) + shards - 1)
                              / shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const Fingerprint& key) {
  // hi is an independent hash stream from lo, so its low bits pick shards
  // uniformly without correlating with the in-shard hash (which folds lo).
  return *shards_[key.hi % shards_.size()];
}

std::shared_ptr<const CacheEntry> ResultCache::Lookup(const Fingerprint& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ResultCache::Insert(const Fingerprint& key, CacheEntry entry) {
  auto value = std::make_shared<const CacheEntry>(std::move(entry));
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

size_t ResultCache::capacity() const {
  return per_shard_capacity_ * shards_.size();
}

void ResultCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->index.clear();
    shard->lru.clear();
  }
}

}  // namespace wsflow::serve
