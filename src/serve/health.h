// wsflow: per-server health tracking for the deployment service.
//
// Each server walks a four-state machine:
//
//     healthy --failure*k--> suspected --failure--> down
//       ^                        |                   |
//       |<------success----------+                   crash reports jump
//       |                                            straight here
//       +--success*k-- recovering <----recovery------+
//
// Failures are debounced: `failure_threshold` consecutive failures take a
// healthy server through suspected to down, and `recovery_threshold`
// consecutive successes walk a recovering server back to healthy. Hard
// crash/recovery reports (e.g. from a fault timeline, src/sim/faults.h)
// bypass the debouncing.
//
// AliveMask() projects the state into the ServerMask the cost layer scores
// against: only kDown servers are dead — a suspected or recovering server
// still accepts placements. The epoch counter bumps on every alive-set
// change so callers can cheaply detect churn between requests.
//
// Thread-safe; every method may be called concurrently.

#ifndef WSFLOW_SERVE_HEALTH_H_
#define WSFLOW_SERVE_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/network/server_mask.h"
#include "src/network/topology.h"
#include "src/sim/faults.h"

namespace wsflow::serve {

enum class ServerHealth : uint8_t {
  kHealthy,
  kSuspected,
  kDown,
  kRecovering,
};

std::string_view ServerHealthToString(ServerHealth state);

struct HealthOptions {
  /// Consecutive soft failures that take a server from healthy to down
  /// (the first moves it to suspected; the rest count it out).
  int failure_threshold = 3;
  /// Consecutive successes that take a recovering server back to healthy.
  int recovery_threshold = 2;
};

class HealthTracker {
 public:
  explicit HealthTracker(size_t num_servers,
                         const HealthOptions& options = {});

  /// Hard crash report: the server is down now, regardless of streaks.
  void ReportCrash(ServerId server);
  /// Hard recovery report: a down server re-enters as recovering and
  /// immediately counts as alive again.
  void ReportRecovery(ServerId server);

  /// Soft signals, debounced by the thresholds.
  void ReportFailure(ServerId server);
  void ReportSuccess(ServerId server);

  /// Folds one fault-timeline event into the tracker with the same mask
  /// semantics as the fault-aware simulator (src/sim/fault_sim.h): crash
  /// and recovery are hard reports, a slowdown is a soft failure — the
  /// server degrades but stays placeable until the debounce counts it out.
  void Observe(const FaultEvent& event);

  ServerHealth StateOf(ServerId server) const;

  /// Mask with exactly the non-kDown servers alive; trivial (all-alive)
  /// when nothing is down.
  ServerMask AliveMask() const;

  /// Bumps whenever the alive set changes; equal epochs mean the mask is
  /// unchanged since the last call.
  uint64_t epoch() const;

  size_t num_servers() const { return cells_.size(); }

  /// e.g. "healthy=6 suspected=1 down=1 recovering=0 epoch=4".
  std::string ToString() const;

 private:
  struct Cell {
    ServerHealth state = ServerHealth::kHealthy;
    int fail_streak = 0;
    int ok_streak = 0;
  };

  void SetState(Cell* cell, ServerHealth next);  // bumps epoch on churn

  HealthOptions options_;
  mutable std::mutex mu_;
  std::vector<Cell> cells_;
  uint64_t epoch_ = 0;
};

}  // namespace wsflow::serve

#endif  // WSFLOW_SERVE_HEALTH_H_
