// wsflow: the concurrent deployment service.
//
// A long-running engine that answers placement queries: callers Submit a
// DeployRequest and receive a future<DeployResponse>. Requests flow through
// a bounded MPMC queue (serve/queue.h) into a pool of worker threads; each
// worker fingerprints the request (serve/fingerprint.h), consults the
// sharded LRU result cache (serve/cache.h) and only on a miss runs the
// requested deployment algorithm cold. Every step is accounted in
// ServeMetrics (serve/metrics.h).
//
// Semantics:
//   - Backpressure: Submit never blocks; a full queue fails fast with
//     ResourceExhausted, leaving retry policy to the caller.
//   - Deadlines: a request popped after its deadline resolves to
//     DeadlineExceeded without running the algorithm.
//   - Shutdown: Stop() (also run by the destructor) closes the queue and
//     joins the workers, which first drain every accepted request — an
//     accepted request always gets exactly one response.
//   - Submitting before Start() is allowed; requests wait in the queue.

#ifndef WSFLOW_SERVE_SERVICE_H_
#define WSFLOW_SERVE_SERVICE_H_

#include <future>
#include <thread>
#include <vector>

#include "src/common/result.h"
#include "src/serve/cache.h"
#include "src/serve/metrics.h"
#include "src/serve/queue.h"
#include "src/serve/request.h"

namespace wsflow::serve {

struct ServiceOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency.
  size_t num_threads = 0;
  /// Bounded queue capacity — the backpressure limit.
  size_t queue_capacity = 1024;
  /// Result cache entry budget and shard count.
  size_t cache_capacity = 4096;
  size_t cache_shards = 16;
};

class DeploymentService {
 public:
  explicit DeploymentService(ServiceOptions options = ServiceOptions());
  ~DeploymentService();

  DeploymentService(const DeploymentService&) = delete;
  DeploymentService& operator=(const DeploymentService&) = delete;

  /// Spawns the worker pool. Fails with FailedPrecondition when already
  /// started or stopped.
  Status Start();

  /// Closes the queue, lets workers drain accepted requests, joins them.
  /// Idempotent.
  void Stop();

  /// Validates and enqueues a request. Errors:
  ///   InvalidArgument    null workflow/network
  ///   NotFound           unknown algorithm name
  ///   ResourceExhausted  queue full (backpressure — retry later)
  ///   FailedPrecondition service stopped
  /// The returned future resolves when a worker finishes the request.
  Result<std::future<DeployResponse>> Submit(DeployRequest request);

  const ServeMetrics& metrics() const { return metrics_; }
  ResultCache& cache() { return cache_; }
  const ServiceOptions& options() const { return options_; }
  size_t num_threads() const { return workers_.size(); }

 private:
  struct Pending {
    DeployRequest request;
    std::promise<DeployResponse> promise;
    ServiceClock::time_point enqueued_at;
  };

  void WorkerLoop();
  DeployResponse Process(const DeployRequest& request);

  ServiceOptions options_;
  BoundedQueue<Pending> queue_;
  ResultCache cache_;
  ServeMetrics metrics_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace wsflow::serve

#endif  // WSFLOW_SERVE_SERVICE_H_
