// wsflow: the concurrent deployment service.
//
// A long-running engine that answers placement queries: callers Submit a
// DeployRequest and receive a future<DeployResponse>. Requests flow through
// a bounded MPMC queue (serve/queue.h) into a pool of worker threads; each
// worker fingerprints the request (serve/fingerprint.h), consults the
// sharded LRU result cache (serve/cache.h) and only on a miss runs the
// requested deployment algorithm cold. Every step is accounted in
// ServeMetrics (serve/metrics.h).
//
// Semantics:
//   - Backpressure: Submit never blocks; a full queue fails fast with
//     ResourceExhausted, leaving retry policy to the caller.
//   - Deadlines: a request popped after its deadline resolves to
//     DeadlineExceeded without running the algorithm.
//   - Shutdown: Stop() (also run by the destructor) closes the queue and
//     joins the workers, which first drain every accepted request — an
//     accepted request always gets exactly one response.
//   - Submitting before Start() is allowed; requests wait in the queue.
//   - Server churn: with a HealthTracker attached (ServiceOptions::health,
//     serve/health.h), every request is answered against the current alive
//     mask. A cached mapping that still routes on the surviving subnetwork
//     is re-costed and served; one that doesn't is served stale — status
//     OK, DeployResponse::degraded set — while the repair search
//     (deploy/repair.h) synchronously heals it for subsequent requests.
//     Repaired entries are cached under a mask-salted fingerprint, so
//     full-health answers are never polluted and recovery falls back to
//     the original entries automatically.

#ifndef WSFLOW_SERVE_SERVICE_H_
#define WSFLOW_SERVE_SERVICE_H_

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/result.h"
#include "src/serve/cache.h"
#include "src/serve/health.h"
#include "src/serve/metrics.h"
#include "src/serve/queue.h"
#include "src/serve/request.h"

namespace wsflow::serve {

struct ServiceOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency.
  size_t num_threads = 0;
  /// Bounded queue capacity — the backpressure limit.
  size_t queue_capacity = 1024;
  /// Result cache entry budget and shard count.
  size_t cache_capacity = 4096;
  size_t cache_shards = 16;
  /// Live server-health signal; null serves every request at full health.
  /// The tracker's size must match the networks the requests carry —
  /// requests over differently-sized networks are served unmasked.
  std::shared_ptr<HealthTracker> health;
  /// Delta-evaluation budget handed to RepairMapping when churn severs a
  /// cached mapping; 0 polishes to a local optimum.
  size_t repair_eval_budget = 2048;
};

class DeploymentService {
 public:
  explicit DeploymentService(ServiceOptions options = ServiceOptions());
  ~DeploymentService();

  DeploymentService(const DeploymentService&) = delete;
  DeploymentService& operator=(const DeploymentService&) = delete;

  /// Spawns the worker pool. Fails with FailedPrecondition when already
  /// started or stopped.
  Status Start();

  /// Closes the queue, lets workers drain accepted requests, joins them.
  /// Idempotent.
  void Stop();

  /// Validates and enqueues a request. Errors:
  ///   InvalidArgument    null workflow/network
  ///   NotFound           unknown algorithm name
  ///   ResourceExhausted  queue full (backpressure — retry later)
  ///   FailedPrecondition service stopped
  /// The returned future resolves when a worker finishes the request.
  Result<std::future<DeployResponse>> Submit(DeployRequest request);

  const ServeMetrics& metrics() const { return metrics_; }
  ResultCache& cache() { return cache_; }
  const ServiceOptions& options() const { return options_; }
  size_t num_threads() const { return workers_.size(); }

 private:
  struct Pending {
    DeployRequest request;
    std::promise<DeployResponse> promise;
    ServiceClock::time_point enqueued_at;
  };

  void WorkerLoop();
  /// `queue_wait_s` is how long the request sat queued before pickup —
  /// reported alongside DeadlineExceeded so shed requests are attributable
  /// (deep queue vs. tight deadline).
  DeployResponse Process(const DeployRequest& request, double queue_wait_s);

  ServiceOptions options_;
  BoundedQueue<Pending> queue_;
  ResultCache cache_;
  ServeMetrics metrics_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace wsflow::serve

#endif  // WSFLOW_SERVE_SERVICE_H_
