#include "src/serve/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/common/stats.h"
#include "src/common/string_util.h"

namespace wsflow::serve {

void ServeMetrics::SampleWindow::Add(double x) {
  std::lock_guard<std::mutex> lock(mu);
  if (samples.size() < kMaxSamples) {
    samples.push_back(x);
  } else {
    samples[total % kMaxSamples] = x;
  }
  ++total;
  sum += x;
  max = std::max(max, x);
}

LatencySummary ServeMetrics::SampleWindow::Summarize() const {
  std::vector<double> copy;
  LatencySummary out;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (total == 0) return out;
    copy = samples;
    out.count = static_cast<size_t>(total);
    out.mean = sum / static_cast<double>(total);
    out.max = max;
  }
  std::vector<double> q = Quantiles(std::move(copy), {0.50, 0.95, 0.99});
  out.p50 = q[0];
  out.p95 = q[1];
  out.p99 = q[2];
  return out;
}

void ServeMetrics::RecordHit(double service_s) {
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  hit_latency_.Add(service_s);
}

void ServeMetrics::RecordMiss(double service_s) {
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  miss_latency_.Add(service_s);
}

void ServeMetrics::RecordQueueWait(double wait_s) {
  queue_wait_.Add(wait_s);
}

void ServeMetrics::RecordDeadlineExceeded(double queue_wait_s) {
  deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  shed_queue_wait_.Add(queue_wait_s);
}

MetricsSnapshot ServeMetrics::Snapshot() const {
  MetricsSnapshot snap;
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  snap.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  snap.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snap.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  snap.failures = failures_.load(std::memory_order_relaxed);
  snap.completed = completed_.load(std::memory_order_relaxed);
  snap.degraded = degraded_.load(std::memory_order_relaxed);
  snap.repairs = repairs_.load(std::memory_order_relaxed);
  snap.repair_failures = repair_failures_.load(std::memory_order_relaxed);
  snap.tenants_admitted = tenants_admitted_.load(std::memory_order_relaxed);
  snap.tenants_queued = tenants_queued_.load(std::memory_order_relaxed);
  snap.tenants_rejected = tenants_rejected_.load(std::memory_order_relaxed);
  snap.migrations = migrations_.load(std::memory_order_relaxed);
  snap.migration_stalls = migration_stalls_.load(std::memory_order_relaxed);
  snap.hit_latency = hit_latency_.Summarize();
  snap.miss_latency = miss_latency_.Summarize();
  snap.queue_wait = queue_wait_.Summarize();
  snap.shed_queue_wait = shed_queue_wait_.Summarize();
  return snap;
}

double MetricsSnapshot::HitRate() const {
  uint64_t resolved = cache_hits + cache_misses;
  if (resolved == 0) return 0.0;
  return static_cast<double>(cache_hits) / static_cast<double>(resolved);
}

namespace {

void AppendLatencyLine(std::ostringstream& os, const char* label,
                       const LatencySummary& s) {
  os << "  " << label << ": n=" << s.count;
  if (s.count > 0) {
    os << " mean=" << FormatSeconds(s.mean) << " p50=" << FormatSeconds(s.p50)
       << " p95=" << FormatSeconds(s.p95) << " p99=" << FormatSeconds(s.p99)
       << " max=" << FormatSeconds(s.max);
  }
  os << "\n";
}

}  // namespace

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  os << "serve metrics:\n"
     << "  submitted=" << submitted << " completed=" << completed
     << " rejected(queue-full)=" << rejected_queue_full
     << " deadline-exceeded=" << deadline_exceeded
     << " failures=" << failures << "\n"
     << "  cache: hits=" << cache_hits << " misses=" << cache_misses
     << " hit-rate=" << FormatDouble(HitRate() * 100, 4) << "%\n"
     << "  churn: degraded=" << degraded << " repairs=" << repairs
     << " repair-failures=" << repair_failures << "\n";
  if (tenants_admitted + tenants_queued + tenants_rejected + migrations +
          migration_stalls >
      0) {
    os << "  fleet: admitted=" << tenants_admitted
       << " queued=" << tenants_queued << " rejected=" << tenants_rejected
       << " migrations=" << migrations << " stalls=" << migration_stalls
       << "\n";
  }
  AppendLatencyLine(os, "hit latency ", hit_latency);
  AppendLatencyLine(os, "miss latency", miss_latency);
  AppendLatencyLine(os, "queue wait  ", queue_wait);
  if (shed_queue_wait.count > 0) {
    AppendLatencyLine(os, "shed wait   ", shed_queue_wait);
  }
  return os.str();
}

}  // namespace wsflow::serve
