#include "src/serve/health.h"

#include "src/common/logging.h"

namespace wsflow::serve {

std::string_view ServerHealthToString(ServerHealth state) {
  switch (state) {
    case ServerHealth::kHealthy:
      return "healthy";
    case ServerHealth::kSuspected:
      return "suspected";
    case ServerHealth::kDown:
      return "down";
    case ServerHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

HealthTracker::HealthTracker(size_t num_servers, const HealthOptions& options)
    : options_(options), cells_(num_servers) {
  WSFLOW_CHECK(num_servers > 0);
  WSFLOW_CHECK(options_.failure_threshold >= 1);
  WSFLOW_CHECK(options_.recovery_threshold >= 1);
}

void HealthTracker::SetState(Cell* cell, ServerHealth next) {
  bool was_alive = cell->state != ServerHealth::kDown;
  bool is_alive = next != ServerHealth::kDown;
  cell->state = next;
  if (was_alive != is_alive) ++epoch_;
}

void HealthTracker::ReportCrash(ServerId server) {
  std::lock_guard<std::mutex> lock(mu_);
  WSFLOW_CHECK(server.value < cells_.size());
  Cell& cell = cells_[server.value];
  cell.fail_streak = 0;
  cell.ok_streak = 0;
  SetState(&cell, ServerHealth::kDown);
}

void HealthTracker::ReportRecovery(ServerId server) {
  std::lock_guard<std::mutex> lock(mu_);
  WSFLOW_CHECK(server.value < cells_.size());
  Cell& cell = cells_[server.value];
  if (cell.state != ServerHealth::kDown) return;
  cell.fail_streak = 0;
  cell.ok_streak = 0;
  SetState(&cell, ServerHealth::kRecovering);
}

void HealthTracker::Observe(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kCrash:
      ReportCrash(event.server);
      break;
    case FaultKind::kRecover:
      ReportRecovery(event.server);
      break;
    case FaultKind::kSlowdown:
      ReportFailure(event.server);
      break;
  }
}

void HealthTracker::ReportFailure(ServerId server) {
  std::lock_guard<std::mutex> lock(mu_);
  WSFLOW_CHECK(server.value < cells_.size());
  Cell& cell = cells_[server.value];
  cell.ok_streak = 0;
  switch (cell.state) {
    case ServerHealth::kHealthy:
      cell.fail_streak = 1;
      SetState(&cell, ServerHealth::kSuspected);
      break;
    case ServerHealth::kSuspected:
      if (++cell.fail_streak >= options_.failure_threshold) {
        cell.fail_streak = 0;
        SetState(&cell, ServerHealth::kDown);
      }
      break;
    case ServerHealth::kRecovering:
      // A failure during recovery is a relapse, not the start of a new
      // suspicion window.
      cell.fail_streak = 0;
      SetState(&cell, ServerHealth::kDown);
      break;
    case ServerHealth::kDown:
      break;
  }
}

void HealthTracker::ReportSuccess(ServerId server) {
  std::lock_guard<std::mutex> lock(mu_);
  WSFLOW_CHECK(server.value < cells_.size());
  Cell& cell = cells_[server.value];
  cell.fail_streak = 0;
  switch (cell.state) {
    case ServerHealth::kHealthy:
      break;
    case ServerHealth::kSuspected:
      cell.ok_streak = 0;
      SetState(&cell, ServerHealth::kHealthy);
      break;
    case ServerHealth::kRecovering:
      if (++cell.ok_streak >= options_.recovery_threshold) {
        cell.ok_streak = 0;
        SetState(&cell, ServerHealth::kHealthy);
      }
      break;
    case ServerHealth::kDown:
      break;
  }
}

ServerHealth HealthTracker::StateOf(ServerId server) const {
  std::lock_guard<std::mutex> lock(mu_);
  WSFLOW_CHECK(server.value < cells_.size());
  return cells_[server.value].state;
}

ServerMask HealthTracker::AliveMask() const {
  std::lock_guard<std::mutex> lock(mu_);
  bool any_down = false;
  for (const Cell& cell : cells_) {
    if (cell.state == ServerHealth::kDown) {
      any_down = true;
      break;
    }
  }
  if (!any_down) return ServerMask();  // trivial: scores exactly unmasked
  ServerMask mask = ServerMask::AllAlive(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].state == ServerHealth::kDown) {
      mask.SetAlive(ServerId(static_cast<uint32_t>(i)), false);
    }
  }
  return mask;
}

uint64_t HealthTracker::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::string HealthTracker::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t counts[4] = {0, 0, 0, 0};
  for (const Cell& cell : cells_) {
    ++counts[static_cast<size_t>(cell.state)];
  }
  return "healthy=" + std::to_string(counts[0]) +
         " suspected=" + std::to_string(counts[1]) +
         " down=" + std::to_string(counts[2]) +
         " recovering=" + std::to_string(counts[3]) +
         " epoch=" + std::to_string(epoch_);
}

}  // namespace wsflow::serve
