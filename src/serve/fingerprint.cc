#include "src/serve/fingerprint.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/network/serialization.h"
#include "src/workflow/serialization.h"

namespace wsflow::serve {

namespace {

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr uint64_t kFnvPrime = 0x00000100000001B3ull;
// A second, independent starting state for the hi stream (splitmix64 of
// the FNV offset basis).
constexpr uint64_t kHiOffset = 0x2545F4914F6CDD1Dull;

uint64_t HashU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xFF;
    h *= kFnvPrime;
    v >>= 8;
  }
  return h;
}

uint64_t HashDouble(uint64_t h, double d) {
  // Hash the bit pattern: distinguishes -0.0/0.0 and round-trips NaNs,
  // which is exactly the "identical inputs" contract a cache key needs.
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return HashU64(h, bits);
}

}  // namespace

uint64_t Fnv1a64(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::string Fingerprint::ToHex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  uint64_t parts[2] = {hi, lo};
  for (int p = 0; p < 2; ++p) {
    for (int i = 0; i < 16; ++i) {
      out[p * 16 + i] =
          kDigits[(parts[p] >> (60 - 4 * i)) & 0xF];
    }
  }
  return out;
}

uint64_t WorkflowDigest(const Workflow& w) {
  uint64_t h = Fnv1a64(WorkflowToXmlString(w), kFnvOffset);
  return h == 0 ? 1 : h;
}

uint64_t NetworkDigest(const Network& n) {
  uint64_t h = Fnv1a64(NetworkToXmlString(n), kFnvOffset);
  return h == 0 ? 1 : h;
}

Fingerprint RequestFingerprint(const DeployRequest& request) {
  uint64_t wf = request.workflow_digest;
  if (wf == 0) {
    WSFLOW_CHECK(request.workflow != nullptr)
        << "fingerprint needs a workflow or a precomputed digest";
    wf = WorkflowDigest(*request.workflow);
  }
  uint64_t net = request.network_digest;
  if (net == 0) {
    WSFLOW_CHECK(request.network != nullptr)
        << "fingerprint needs a network or a precomputed digest";
    net = NetworkDigest(*request.network);
  }

  Fingerprint fp;
  for (uint64_t offset : {kFnvOffset, kHiOffset}) {
    uint64_t h = offset;
    h = HashU64(h, wf);
    h = HashU64(h, net);
    h = Fnv1a64(request.algorithm, h);
    // Separator so that ("ab", weights) never collides with ("a",
    // b-prefixed weights) — the algorithm name is variable-length.
    h ^= 0xFF;
    h *= kFnvPrime;
    h = HashDouble(h, request.cost_options.execution_weight);
    h = HashDouble(h, request.cost_options.fairness_weight);
    h = HashU64(h, request.seed);
    (offset == kFnvOffset ? fp.lo : fp.hi) = h;
  }
  return fp;
}

Fingerprint WithMaskDigest(const Fingerprint& base, uint64_t mask_digest) {
  if (mask_digest == 0) return base;
  Fingerprint fp;
  fp.lo = HashU64(base.lo, mask_digest);
  fp.hi = HashU64(base.hi, mask_digest);
  return fp;
}

}  // namespace wsflow::serve
